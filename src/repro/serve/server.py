"""The serving front end: admission → dynamic batcher → router → engine.

:class:`SongServer` is the traffic-facing object.  Callers ``await
submit(query)`` (or ``submit_insert(vector)``) and get a
:class:`~repro.serve.request.ServeResponse`; internally the request
flows through

1. **admission** — bounded queue, shed/degrade/block policy
   (:mod:`repro.serve.admission`);
2. **dynamic batching** — size-or-deadline batch formation with
   SLO-adaptive sizing (:mod:`repro.serve.batcher`);
3. **routing** — least-loaded replica selection, sharded fan-out,
   read/write locking for online indexes (:mod:`repro.serve.router`);
4. **engine execution** — batch results plus simulated-GPU service time
   (:mod:`repro.serve.engine`), charged against the event-loop clock.

Every stage reports into a :class:`~repro.serve.metrics.ServeMetrics`
instance exported as JSON via :meth:`SongServer.metrics_dict`.

The server is clock-agnostic: on a normal asyncio loop it serves in
real time; on a :class:`~repro.serve.clock.VirtualTimeEventLoop` the
same code yields deterministic simulated-time experiments.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import SearchConfig
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    BatchObservation,
    default_tiers,
)
from repro.serve.batcher import BatchPolicy, DynamicBatcher
from repro.serve.clock import gather_all
from repro.serve.engine import SimulatedGpuEngine
from repro.serve.metrics import ServeMetrics
from repro.serve.request import INSERT, SEARCH, ServeRequest, ServeResponse
from repro.serve.router import Replica, Router

__all__ = ["ServerConfig", "SongServer", "build_server", "build_server_from_data"]


@dataclass
class ServerConfig:
    """Everything a :class:`SongServer` needs besides its replicas."""

    base: SearchConfig = field(default_factory=lambda: SearchConfig(k=10, queue_size=64))
    tiers: Optional[Sequence[SearchConfig]] = None
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    routing: str = "least-loaded"

    def resolved_tiers(self) -> List[SearchConfig]:
        """The degradation ladder (derived from ``base`` when not given)."""
        if self.tiers is not None:
            return list(self.tiers)
        return default_tiers(self.base)


class SongServer:
    """An in-process ANN serving instance over one or more replicas."""

    def __init__(self, replicas: Sequence[Replica], config: ServerConfig) -> None:
        self.config = config
        self.router = Router(replicas, policy=config.routing)
        self.admission = AdmissionController(
            config.admission, config.resolved_tiers()
        )
        self.metrics = ServeMetrics()
        # Pipelined dispatch: one slot per device stream, so the next
        # batch's HtoD can be admitted while the current batch computes.
        self.batcher = DynamicBatcher(
            config.batch,
            config.admission.slo_p99_s,
            self._dispatch,
            max_inflight=sum(getattr(r, "streams", 1) for r in replicas),
        )
        self._run_task: Optional[asyncio.Task] = None
        self._next_id = 0
        # Insertion-ordered (dict, not set): stop() awaits inserts in
        # submission order, keeping virtual-clock shutdown deterministic.
        self._insert_tasks: Dict[asyncio.Task, None] = {}

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Start the batch-formation loop."""
        if self._run_task is not None:
            raise RuntimeError("server already started")
        self._run_task = asyncio.create_task(self.batcher.run())

    async def stop(self) -> None:
        """Drain pending and in-flight work, then stop."""
        if self._run_task is None:
            return
        self.batcher.stop()
        await self._run_task
        self._run_task = None
        while self._insert_tasks:
            await gather_all(*tuple(self._insert_tasks))
        await self.batcher.drain()

    # -- client API ------------------------------------------------------

    async def submit(
        self, query: np.ndarray, ground_truth: Optional[np.ndarray] = None
    ) -> ServeResponse:
        """Serve one query; resolves when it completes or is shed."""
        loop = asyncio.get_running_loop()
        request = ServeRequest(
            request_id=self._take_id(),
            kind=SEARCH,
            payload=np.asarray(query, dtype=np.float32),
            arrival_s=loop.time(),
            future=loop.create_future(),
            ground_truth=ground_truth,
        )
        self.metrics.on_arrival(self.batcher.queue_depth)
        admitted, reason = await self.admission.try_admit(self.batcher.queue_depth)
        if not admitted:
            response = ServeResponse(
                request_id=request.request_id,
                kind=SEARCH,
                status="shed",
                shed_reason=reason,
            )
            self.metrics.on_shed(reason)
            request.resolve(response)
            return await request.future
        self.metrics.on_admit()
        self.batcher.enqueue(request)
        return await request.future

    async def submit_insert(self, vector: np.ndarray) -> ServeResponse:
        """Ingest one vector through the write path (online replicas)."""
        loop = asyncio.get_running_loop()
        request = ServeRequest(
            request_id=self._take_id(),
            kind=INSERT,
            payload=np.asarray(vector, dtype=np.float32),
            arrival_s=loop.time(),
            future=loop.create_future(),
        )
        self.metrics.on_arrival(self.batcher.queue_depth)
        self.metrics.on_admit()
        task = asyncio.create_task(self._run_insert(request))
        self._insert_tasks[task] = None
        task.add_done_callback(lambda t: self._insert_tasks.pop(t, None))
        return await request.future

    # -- pipeline internals ----------------------------------------------

    def _take_id(self) -> int:
        rid = self._next_id
        self._next_id += 1
        return rid

    def _shed(self, request: ServeRequest, reason: str) -> None:
        self.metrics.on_shed(reason)
        request.resolve(
            ServeResponse(
                request_id=request.request_id,
                kind=request.kind,
                status="shed",
                shed_reason=reason,
            )
        )

    async def _dispatch(self, batch: List[ServeRequest]) -> None:
        """Run one formed batch on a routed replica and resolve futures."""
        loop = asyncio.get_running_loop()
        now = loop.time()
        for _ in batch:
            self.admission.release_slot()
        deadline = self.admission.shed_deadline_s()
        if deadline is not None:
            keep = []
            for request in batch:
                if now - request.arrival_s > deadline:
                    self._shed(request, "expired")
                else:
                    keep.append(request)
            batch = keep
        if not batch:
            return
        tier = self.admission.tier
        cfg = self.admission.current_config()
        self.metrics.on_batch(len(batch), self.batcher.queue_depth)
        queries = np.stack([r.payload for r in batch])
        replica = self.router.pick()
        for request in batch:
            request.dispatch_s = now
        outcome = await replica.run_batch(queries, cfg)
        done = loop.time()
        service = outcome.service_seconds
        self._observe_device(outcome)
        for i, request in enumerate(batch):
            total = done - request.arrival_s
            wait = max(0.0, total - service)
            recall = _recall_of(
                outcome.results[i], request.ground_truth, self.config.base.k
            )
            self.metrics.on_complete(SEARCH, tier, wait, service, recall)
            request.resolve(
                ServeResponse(
                    request_id=request.request_id,
                    kind=SEARCH,
                    status="ok",
                    results=outcome.results[i],
                    tier=tier,
                    ef=cfg.queue_size,
                    queue_wait_s=wait,
                    service_s=service,
                    latency_s=total,
                    batch_size=len(batch),
                    replica=replica.name,
                    recall=recall,
                )
            )
        observation = BatchObservation(
            batch_size=len(batch),
            service_seconds=service,
            queue_depth_after=self.batcher.queue_depth,
            tier=tier,
        )
        self.admission.observe_batch(observation)
        self.batcher.controller.observe(
            len(batch), service, self.batcher.queue_depth
        )

    def _observe_device(self, outcome) -> None:
        """Feed device-side stream accounting into the metrics."""
        detail = outcome.detail
        sched = detail.get("schedule")
        if sched is not None:
            self.metrics.on_device_batch(
                sched["htod_s"], sched["kernel_s"], sched["dtoh_s"],
                sched["makespan_s"],
            )
        elif "kernel_seconds" in detail:
            # Serial path: the makespan IS the serial sum (overlap = 1).
            self.metrics.on_device_batch(
                detail["htod_seconds"],
                detail["kernel_seconds"],
                detail["dtoh_seconds"],
                outcome.service_seconds,
            )

    async def _run_insert(self, request: ServeRequest) -> None:
        try:
            await self._run_insert_inner(request)
        except Exception as exc:
            # Resolve the caller's future even on failure: an unresolved
            # future would park submit_insert() forever.  The response is
            # the delivery path for the error — re-raising here would
            # only orphan the exception on a task nobody retrieves (the
            # done-callback pops finished tasks before stop() gathers).
            request.resolve(
                ServeResponse(
                    request_id=request.request_id,
                    kind=INSERT,
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
            )

    async def _run_insert_inner(self, request: ServeRequest) -> None:
        loop = asyncio.get_running_loop()
        replica = self.router.pick_writable()
        outcome = await replica.run_inserts(request.payload[None, :])
        done = loop.time()
        total = done - request.arrival_s
        service = outcome.service_seconds
        self.metrics.on_complete(INSERT, 0, max(0.0, total - service), service)
        request.resolve(
            ServeResponse(
                request_id=request.request_id,
                kind=INSERT,
                status="ok",
                inserted_id=outcome.detail["inserted_ids"][0],
                queue_wait_s=max(0.0, total - service),
                service_s=service,
                latency_s=total,
                batch_size=1,
                replica=replica.name,
            )
        )

    # -- observability ---------------------------------------------------

    def metrics_dict(self) -> Dict[str, object]:
        """JSON-able metrics snapshot including per-replica stats."""
        out = self.metrics.to_dict()
        out["replicas"] = self.router.stats()
        # Streamed replicas overlap *across* batches, which per-batch
        # makespans cannot see; replace the overlap views with the
        # device-timeline window-union aggregates when available.
        timelines = [
            r["device_timeline"] for r in out["replicas"] if "device_timeline" in r
        ]
        if timelines:
            window = sum(t["window_s"] for t in timelines)
            transfers = sum(t["htod_busy_s"] + t["dtoh_busy_s"] for t in timelines)
            busy = transfers + sum(t["kernel_busy_s"] for t in timelines)
            streams = out["streams"]
            streams["window_s"] = round(window, 9)
            streams["overlap_efficiency"] = (
                round(busy / window, 6) if window > 0.0 else 0.0
            )
            streams["transfer_hidden_fraction"] = (
                round(min(1.0, max(0.0, (busy - window) / transfers)), 6)
                if transfers > 0.0 and window > 0.0
                else 0.0
            )
        out["tier_ladder"] = [cfg.queue_size for cfg in self.admission.tiers]
        out["final_tier"] = self.admission.tier
        out["final_batch_target"] = self.batcher.controller.target
        return out


def _recall_of(results, ground_truth, k: int) -> Optional[float]:
    """Recall@k of one result list against optional exact ids."""
    if ground_truth is None:
        return None
    truth = set(np.asarray(ground_truth)[:k].tolist())
    found = {v for _, v in results}
    return len(truth & found) / max(1, len(truth))


def build_server(
    graph,
    data: np.ndarray,
    config: Optional[ServerConfig] = None,
    num_replicas: int = 1,
    device: str = "v100",
    streams: int = 1,
    tier=None,
    prefetch: bool = True,
) -> SongServer:
    """Convenience: a server over ``num_replicas`` copies of one index.

    Each replica models an independent device serving the same graph and
    dataset — the simplest production topology (full replication) — with
    ``streams`` CUDA-style streams per device (1 = the serial model).
    With ``tier`` (a :class:`~repro.tiered.TieredConfig`) each replica
    serves through the out-of-core tier instead: compressed-resident
    traversal plus PCIe-metered exact re-ranking, with ``prefetch``
    selecting staged/overlapped page fetches vs serial demand fetches.
    """
    if num_replicas <= 0:
        raise ValueError("num_replicas must be positive")
    config = config or ServerConfig()
    if tier is not None:
        from repro.tiered.engine import TieredServeEngine

        replicas = [
            Replica(
                TieredServeEngine(
                    graph,
                    data,
                    tier,
                    device=device,
                    name=f"tiered{i}",
                    prefetch=prefetch,
                ),
                streams=streams,
            )
            for i in range(num_replicas)
        ]
    else:
        replicas = [
            Replica(
                SimulatedGpuEngine(graph, data, device=device, name=f"gpu{i}"),
                streams=streams,
            )
            for i in range(num_replicas)
        ]
    return SongServer(replicas, config)


def build_server_from_data(
    data: np.ndarray,
    config: Optional[ServerConfig] = None,
    build=None,
    degree: int = 16,
    metric: str = "l2",
    num_replicas: int = 1,
    device: str = "v100",
    streams: int = 1,
    tier=None,
    prefetch: bool = True,
) -> SongServer:
    """Build the index from raw vectors, then serve it.

    ``build`` is a :class:`~repro.core.config.BuildConfig` selecting the
    graph family (``graph_type``) and construction engine; the default
    builds a batched NSW.  Everything else matches :func:`build_server`.
    """
    from repro.core.config import BuildConfig
    from repro.graphs import build_graph

    build = build or BuildConfig()
    graph = build_graph(
        data,
        build.graph_type,
        degree=degree,
        metric=metric,
        build_engine=build.engine,
        seed=build.seed,
        insert_batch=build.insert_batch,
    )
    return build_server(
        graph,
        data,
        config,
        num_replicas=num_replicas,
        device=device,
        streams=streams,
        tier=tier,
        prefetch=prefetch,
    )
