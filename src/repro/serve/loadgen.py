"""Synthetic traffic: seeded open-loop Poisson clients and loadtests.

An **open-loop** client fires requests at exponentially distributed
inter-arrival gaps regardless of how the server is doing — the honest
way to measure a serving system, since a closed-loop client slows down
exactly when the server struggles and flatters its tail latency.

:func:`run_loadtest` is the all-in-one harness: build a server, drive a
seeded Poisson arrival process against it on a virtual-time loop, and
report achieved QPS, p50/p99 latency, shed rate, recall-under-load and
the degradation behaviour — all deterministic for fixed seeds, because
both the clock and the arrival process are simulated.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serve.clock import run_virtual
from repro.serve.request import ServeResponse
from repro.serve.server import SongServer

__all__ = [
    "LoadtestReport",
    "poisson_arrivals",
    "drive_poisson",
    "run_loadtest",
    "summarize",
]


def poisson_arrivals(
    rate_qps: float, num_requests: int, seed: int = 0
) -> np.ndarray:
    """Arrival timestamps of an open-loop Poisson process (seconds)."""
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_qps, size=num_requests)
    return np.cumsum(gaps)


async def drive_poisson(
    server: SongServer,
    queries: np.ndarray,
    rate_qps: float,
    num_requests: int,
    seed: int = 0,
    ground_truth: Optional[np.ndarray] = None,
    insert_every: int = 0,
    insert_vectors: Optional[np.ndarray] = None,
) -> List[ServeResponse]:
    """Fire a Poisson request stream at a running server; gather responses.

    Queries are drawn round-robin from ``queries`` (and ground-truth rows
    alongside, when given).  With ``insert_every = j > 0``, every ``j``-th
    request is a vector insert drawn round-robin from ``insert_vectors``
    — the mixed read/write workload for online indexes.
    """
    loop = asyncio.get_running_loop()
    arrivals = poisson_arrivals(rate_qps, num_requests, seed)
    start = loop.time()
    tasks: List[asyncio.Task] = []
    num_inserts = 0
    for i in range(num_requests):
        gap = start + float(arrivals[i]) - loop.time()
        if gap > 0:
            await asyncio.sleep(gap)
        is_insert = (
            insert_every > 0
            and insert_vectors is not None
            and (i + 1) % insert_every == 0
        )
        if is_insert:
            vec = insert_vectors[num_inserts % len(insert_vectors)]
            num_inserts += 1
            tasks.append(asyncio.create_task(server.submit_insert(vec)))
        else:
            qi = i % len(queries)
            gt = None if ground_truth is None else ground_truth[qi]
            tasks.append(
                asyncio.create_task(server.submit(queries[qi], ground_truth=gt))
            )
    return list(await asyncio.gather(*tasks))


@dataclass
class LoadtestReport:
    """Summary of one offered-load point."""

    offered_qps: float
    num_requests: int
    completed: int
    shed: int
    shed_rate: float
    achieved_qps: float
    p50_latency_s: float
    p99_latency_s: float
    mean_batch_size: float
    slo_p99_s: float
    slo_met: bool
    recall: Optional[float]
    degraded_fraction: float
    final_tier: int
    duration_s: float
    metrics: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Deterministically rounded JSON-able view."""
        return {
            "offered_qps": round(self.offered_qps, 3),
            "num_requests": self.num_requests,
            "completed": self.completed,
            "shed": self.shed,
            "shed_rate": round(self.shed_rate, 6),
            "achieved_qps": round(self.achieved_qps, 3),
            "p50_latency_ms": round(1e3 * self.p50_latency_s, 6),
            "p99_latency_ms": round(1e3 * self.p99_latency_s, 6),
            "mean_batch_size": round(self.mean_batch_size, 3),
            "slo_p99_ms": round(1e3 * self.slo_p99_s, 6),
            "slo_met": self.slo_met,
            "recall": None if self.recall is None else round(self.recall, 6),
            "degraded_fraction": round(self.degraded_fraction, 6),
            "final_tier": self.final_tier,
            "duration_s": round(self.duration_s, 6),
        }


async def _loadtest_run(
    server: SongServer,
    queries: np.ndarray,
    rate_qps: float,
    num_requests: int,
    seed: int,
    ground_truth: Optional[np.ndarray],
    insert_every: int,
    insert_vectors: Optional[np.ndarray],
) -> LoadtestReport:
    loop = asyncio.get_running_loop()
    start = loop.time()
    await server.start()
    responses = await drive_poisson(
        server,
        queries,
        rate_qps,
        num_requests,
        seed=seed,
        ground_truth=ground_truth,
        insert_every=insert_every,
        insert_vectors=insert_vectors,
    )
    await server.stop()
    duration = loop.time() - start
    return summarize(server, responses, rate_qps, duration)


def summarize(
    server: SongServer,
    responses: Sequence[ServeResponse],
    offered_qps: float,
    duration_s: float,
) -> LoadtestReport:
    """Fold a response list plus server metrics into a report."""
    completed = [r for r in responses if r.ok]
    shed = len(responses) - len(completed)
    metrics = server.metrics_dict()
    latency = server.metrics.stage_latency["total"]
    slo = server.config.admission.slo_p99_s
    p99 = latency.percentile(99)
    tiers = server.metrics.tier_counts
    degraded = sum(c for t, c in tiers.items() if t > 0)
    return LoadtestReport(
        offered_qps=offered_qps,
        num_requests=len(responses),
        completed=len(completed),
        shed=shed,
        shed_rate=shed / len(responses) if responses else 0.0,
        achieved_qps=len(completed) / duration_s if duration_s > 0 else 0.0,
        p50_latency_s=latency.percentile(50),
        p99_latency_s=p99,
        mean_batch_size=server.metrics.mean_batch_size(),
        slo_p99_s=slo,
        slo_met=p99 <= slo,
        recall=server.metrics.overall_recall(),
        degraded_fraction=degraded / max(1, sum(tiers.values())),
        final_tier=server.admission.tier,
        duration_s=duration_s,
        metrics=metrics,
    )


def run_loadtest(
    make_server,
    queries: np.ndarray,
    rate_qps: float,
    num_requests: int,
    seed: int = 0,
    ground_truth: Optional[np.ndarray] = None,
    insert_every: int = 0,
    insert_vectors: Optional[np.ndarray] = None,
) -> LoadtestReport:
    """One offered-load point on a fresh virtual-time loop.

    ``make_server`` is a zero-argument factory (servers bind asyncio
    primitives to the loop they run on, so each loadtest needs a fresh
    instance).  Fully deterministic for fixed seeds.
    """
    async def main() -> LoadtestReport:
        server = make_server()
        return await _loadtest_run(
            server,
            queries,
            rate_qps,
            num_requests,
            seed,
            ground_truth,
            insert_every,
            insert_vectors,
        )

    return run_virtual(main())
