"""Admission control: bounded queues, load shedding, SLO-aware degradation.

The controller sits between :meth:`SongServer.submit` and the dynamic
batcher.  Its job is to keep the p99 total latency under the SLO when
offered load exceeds capacity, using two levers in order of preference:

1. **degrade** — drop the search to a cheaper quality tier (lower
   ``ef``/queue size), trading recall for throughput so the queue drains
   faster;
2. **shed** — once the bounded queue is full (or a request has waited
   past its shed deadline), reject outright; an unbounded queue under
   overload only converts every request into an SLO miss.

Tier selection is feedback-driven and deterministic: after every batch
the controller re-estimates the queue drain latency (queue depth x EWMA
per-query service time + one batch service time) and steps the tier down
when the estimate breaches the SLO, back up when it has stayed below
``recover_fraction * SLO`` for ``cooldown_batches`` consecutive batches
(hysteresis, so the tier doesn't flap).

Policies:

- ``"reject"`` — fixed tier 0, shed when the queue is full (classic
  bounded-queue serving);
- ``"degrade"`` — the adaptive ladder above, shedding only at the hard
  queue cap;
- ``"block"`` — backpressure: callers wait for queue space (closed-loop
  clients), never shed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import SearchConfig

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionConfig",
    "AdmissionController",
    "BatchObservation",
    "default_tiers",
]

#: Valid admission policies.
ADMISSION_POLICIES = ("reject", "degrade", "block")


def default_tiers(base: SearchConfig, num_tiers: int = 4) -> List[SearchConfig]:
    """A degradation ladder derived from ``base`` by halving ``ef``.

    Tier 0 is ``base`` itself; each subsequent tier halves the frontier
    queue size (the paper's recall/throughput dial) down to ``k``.
    Consecutive duplicates are dropped, so the ladder may be shorter
    than ``num_tiers``.
    """
    tiers = [base]
    ef = base.queue_size
    for _ in range(max(0, num_tiers - 1)):
        ef = max(base.k, ef // 2)
        cfg = base.with_options(queue_size=ef)
        if cfg.queue_size == tiers[-1].queue_size:
            break
        tiers.append(cfg)
    return tiers


@dataclass
class BatchObservation:
    """What the batcher reports after each completed batch."""

    batch_size: int
    service_seconds: float
    queue_depth_after: int
    tier: int


@dataclass
class AdmissionConfig:
    """Tunables of the admission controller.

    Attributes
    ----------
    max_queue:
        Hard cap on pending (admitted, undispatched) requests.
    policy:
        One of :data:`ADMISSION_POLICIES`.
    slo_p99_s:
        Target p99 total latency in (simulated) seconds.
    shed_deadline_s:
        Requests that waited longer than this are shed at dispatch time
        (``None`` disables; defaults to ``2 * slo_p99_s`` when adaptive).
    cooldown_batches:
        Consecutive calm batches required before re-upgrading a tier.
    recover_fraction:
        Latency estimate must stay below this fraction of the SLO to
        count as calm.
    """

    max_queue: int = 256
    policy: str = "degrade"
    slo_p99_s: float = 0.005
    shed_deadline_s: Optional[float] = None
    cooldown_batches: int = 4
    recover_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.policy!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )
        if self.max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if self.slo_p99_s <= 0:
            raise ValueError("slo_p99_s must be positive")
        if self.cooldown_batches <= 0:
            raise ValueError("cooldown_batches must be positive")
        if not 0.0 < self.recover_fraction <= 1.0:
            raise ValueError("recover_fraction must be in (0, 1]")


class AdmissionController:
    """Bounded-queue admission with a feedback-driven quality ladder."""

    def __init__(
        self,
        config: AdmissionConfig,
        tiers: Sequence[SearchConfig],
    ) -> None:
        if not tiers:
            raise ValueError("need at least one quality tier")
        self.config = config
        self.tiers = list(tiers)
        self.tier = 0
        self._ewma_per_query: Optional[float] = None
        self._ewma_batch: Optional[float] = None
        self._calm_batches = 0
        self._slots: Optional[asyncio.Semaphore] = None

    # -- submission side -------------------------------------------------

    def _semaphore(self) -> asyncio.Semaphore:
        # Created lazily so the controller binds to the running loop.
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.config.max_queue)
        return self._slots

    async def try_admit(self, queue_depth: int) -> Tuple[bool, str]:
        """Decide one arrival; returns ``(admitted, shed_reason)``.

        With the ``block`` policy this awaits queue space (backpressure)
        instead of shedding.
        """
        if self.config.policy == "block":
            await self._semaphore().acquire()
            return True, ""
        if queue_depth >= self.config.max_queue:
            return False, "queue_full"
        return True, ""

    def release_slot(self) -> None:
        """Return a blocked-policy queue slot after dispatch."""
        if self.config.policy == "block" and self._slots is not None:
            self._slots.release()

    def shed_deadline_s(self) -> Optional[float]:
        """Max queue wait before a request is shed at dispatch."""
        if self.config.shed_deadline_s is not None:
            return self.config.shed_deadline_s
        if self.config.policy == "degrade":
            return 2.0 * self.config.slo_p99_s
        return None

    # -- feedback side ---------------------------------------------------

    def current_config(self) -> SearchConfig:
        """The search config of the active quality tier."""
        return self.tiers[self.tier]

    def estimated_latency_s(self, queue_depth: int) -> float:
        """Drain-time estimate for a request arriving at this depth."""
        if self._ewma_per_query is None or self._ewma_batch is None:
            return 0.0
        return queue_depth * self._ewma_per_query + self._ewma_batch

    def observe_batch(self, obs: BatchObservation) -> None:
        """Feed one completed batch back into the tier controller."""
        per_query = obs.service_seconds / max(1, obs.batch_size)
        alpha = 0.3
        if self._ewma_per_query is None:
            self._ewma_per_query = per_query
            self._ewma_batch = obs.service_seconds
        else:
            self._ewma_per_query += alpha * (per_query - self._ewma_per_query)
            self._ewma_batch += alpha * (obs.service_seconds - self._ewma_batch)
        if self.config.policy != "degrade":
            return
        estimate = self.estimated_latency_s(obs.queue_depth_after)
        slo = self.config.slo_p99_s
        if estimate > slo and self.tier < len(self.tiers) - 1:
            self.tier += 1
            self._calm_batches = 0
        elif estimate < self.config.recover_fraction * slo:
            self._calm_batches += 1
            if self._calm_batches >= self.config.cooldown_batches and self.tier > 0:
                self.tier -= 1
                self._calm_batches = 0
        else:
            self._calm_batches = 0
