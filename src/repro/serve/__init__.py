"""``repro.serve`` — the async serving layer over the batch engines.

Turns the offline indexes (:class:`~repro.core.gpu_kernel.GpuSongIndex`,
:class:`~repro.core.sharding.ShardedSongIndex`,
:class:`~repro.core.online.OnlineSongIndex`) into a traffic-facing
service: dynamic batching, admission control with SLO-aware degradation,
replica/shard routing, and a metrics core — all runnable on a
deterministic virtual-time event loop for paper-style QPS/latency/recall
curves.

Quickstart::

    from repro import SearchConfig, build_nsw
    from repro.serve import ServerConfig, build_server, run_loadtest

    graph = build_nsw(data, m=8)
    cfg = ServerConfig(base=SearchConfig(k=10, queue_size=64))
    report = run_loadtest(
        lambda: build_server(graph, data, cfg),
        queries, rate_qps=20_000, num_requests=2000,
    )
    print(report.to_dict())
"""

from repro.serve.admission import (
    ADMISSION_POLICIES,
    AdmissionConfig,
    AdmissionController,
    BatchObservation,
    default_tiers,
)
from repro.serve.batcher import BatchPolicy, BatchSizeController, DynamicBatcher
from repro.serve.clock import VirtualTimeEventLoop, run_virtual
from repro.serve.engine import (
    BatchServiceResult,
    OnlineServeEngine,
    ShardedServeEngine,
    SimulatedGpuEngine,
)
from repro.serve.loadgen import (
    LoadtestReport,
    drive_poisson,
    poisson_arrivals,
    run_loadtest,
    summarize,
)
from repro.serve.metrics import LatencyHistogram, ServeMetrics
from repro.serve.request import ServeRequest, ServeResponse
from repro.serve.router import AsyncRWLock, Replica, Router
from repro.serve.server import (
    ServerConfig,
    SongServer,
    build_server,
    build_server_from_data,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionConfig",
    "AdmissionController",
    "AsyncRWLock",
    "BatchObservation",
    "BatchPolicy",
    "BatchServiceResult",
    "BatchSizeController",
    "DynamicBatcher",
    "LatencyHistogram",
    "LoadtestReport",
    "OnlineServeEngine",
    "Replica",
    "Router",
    "ServeMetrics",
    "ServeRequest",
    "ServeResponse",
    "ServerConfig",
    "ShardedServeEngine",
    "SimulatedGpuEngine",
    "SongServer",
    "VirtualTimeEventLoop",
    "default_tiers",
    "build_server_from_data",
    "drive_poisson",
    "poisson_arrivals",
    "run_loadtest",
    "run_virtual",
    "summarize",
]
