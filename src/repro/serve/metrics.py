"""Serving metrics core: histograms, counters, gauges, JSON export.

Every pipeline stage reports into one :class:`ServeMetrics` instance:

- **per-stage latency histograms** (``queue_wait`` / ``service`` /
  ``total``) as log-bucketed :class:`LatencyHistogram`\\ s — constant
  memory, deterministic percentile extraction;
- **queue depth** sampled at every admission and dispatch;
- **batch-size distribution** of dispatched batches;
- **counters** for arrivals, completions, sheds (by reason), inserts and
  degraded requests (by tier);
- **recall under load** per quality tier, when callers attach ground
  truth to their requests.

:meth:`ServeMetrics.to_dict` renders everything as a JSON-able snapshot;
the loadtest CLI and ``bench_serving`` persist it verbatim, which is why
all outputs are rounded deterministically and keys are sorted.
"""

from __future__ import annotations

# lint: hot-path

from typing import Dict, Optional

import numpy as np

__all__ = ["LatencyHistogram", "ServeMetrics"]

#: Histogram bucket geometry: upper edges from 100 ns to ~17 min, ratio 2**0.25.
_EDGE_LO = 1e-7
_EDGE_RATIO = 2.0 ** 0.25
_NUM_BUCKETS = 136


def _bucket_edges() -> np.ndarray:
    return _EDGE_LO * _EDGE_RATIO ** np.arange(_NUM_BUCKETS, dtype=np.float64)


class LatencyHistogram:
    """Log-bucketed histogram of nonnegative durations (seconds).

    Buckets are geometric (ratio :math:`2^{1/4}`, ~19% relative width),
    so any percentile is recovered within one bucket's relative error —
    plenty for p50/p99 serving curves — at fixed memory.  Exact count,
    sum, min and max are tracked alongside.
    """

    def __init__(self) -> None:
        self._edges = _bucket_edges()
        self._counts = np.zeros(_NUM_BUCKETS + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration."""
        self.observe_many(np.asarray([seconds], dtype=np.float64))

    def observe_many(self, seconds: np.ndarray) -> None:
        """Record a vector of durations in one bucketing pass."""
        seconds = np.asarray(seconds, dtype=np.float64)
        if seconds.size == 0:
            return
        if (seconds < 0).any():
            raise ValueError("durations must be nonnegative")
        idx = np.searchsorted(self._edges, seconds, side="left")
        np.add.at(self._counts, idx, 1)
        self.count += int(seconds.size)
        self.total += float(seconds.sum())
        self.min = min(self.min, float(seconds.min()))
        self.max = max(self.max, float(seconds.max()))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (0 < p <= 100).

        Returns the geometric midpoint of the bucket holding the rank,
        clamped to the observed min/max so tiny samples stay sensible.
        """
        if not 0.0 < p <= 100.0:
            raise ValueError("p must be in (0, 100]")
        if self.count == 0:
            return 0.0
        rank = int(np.ceil(p / 100.0 * self.count))
        cum = np.cumsum(self._counts)
        b = int(np.searchsorted(cum, rank, side="left"))
        if b == 0:
            mid = self._edges[0] / np.sqrt(_EDGE_RATIO)
        elif b >= _NUM_BUCKETS:
            mid = self._edges[-1] * np.sqrt(_EDGE_RATIO)
        else:
            mid = float(np.sqrt(self._edges[b - 1] * self._edges[b]))
        return float(min(max(mid, self.min), self.max))

    def to_dict(self) -> Dict[str, float]:
        """JSON-able summary (count, mean, min/max, p50/p90/p99)."""
        return {
            "count": self.count,
            "mean_s": round(self.mean, 9),
            "min_s": round(self.min if self.count else 0.0, 9),
            "max_s": round(self.max, 9),
            "p50_s": round(self.percentile(50), 9),
            "p90_s": round(self.percentile(90), 9),
            "p99_s": round(self.percentile(99), 9),
        }


class ServeMetrics:
    """Aggregated observability for one server instance."""

    #: Latency stages every served request reports.
    STAGES = ("queue_wait", "service", "total")

    def __init__(self) -> None:
        self.stage_latency: Dict[str, LatencyHistogram] = {
            s: LatencyHistogram() for s in self.STAGES
        }
        self.queue_depth = LatencyHistogram()  # depths, not durations
        self.batch_sizes: Dict[int, int] = {}
        self.counters: Dict[str, int] = {
            "arrived": 0,
            "admitted": 0,
            "completed": 0,
            "inserted": 0,
            "shed": 0,
            "degraded": 0,
            "batches": 0,
        }
        self.shed_reasons: Dict[str, int] = {}
        self.tier_counts: Dict[int, int] = {}
        self._recall_sum: Dict[int, float] = {}
        self._recall_n: Dict[int, int] = {}
        # Device-side stream accounting (engine-busy vs makespan sums).
        self._device_batches = 0
        self._device_htod_s = 0.0
        self._device_kernel_s = 0.0
        self._device_dtoh_s = 0.0
        self._device_makespan_s = 0.0

    # -- event sinks -----------------------------------------------------

    def on_arrival(self, queue_depth: int) -> None:
        """A request reached admission with the given queue depth."""
        self.counters["arrived"] += 1
        self.queue_depth.observe(float(queue_depth))

    def on_admit(self) -> None:
        """Admission accepted a request into the pending queue."""
        self.counters["admitted"] += 1

    def on_shed(self, reason: str) -> None:
        """A request was shed (rejected or expired)."""
        self.counters["shed"] += 1
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1

    def on_batch(self, size: int, queue_depth_after: int) -> None:
        """The batcher dispatched a batch of ``size`` requests."""
        self.counters["batches"] += 1
        self.batch_sizes[size] = self.batch_sizes.get(size, 0) + 1
        self.queue_depth.observe(float(queue_depth_after))

    def on_complete(
        self,
        kind: str,
        tier: int,
        queue_wait_s: float,
        service_s: float,
        recall: Optional[float] = None,
    ) -> None:
        """A request finished service; record its latency breakdown."""
        self.counters["completed"] += 1
        if kind == "insert":
            self.counters["inserted"] += 1
        if tier > 0:
            self.counters["degraded"] += 1
        self.tier_counts[tier] = self.tier_counts.get(tier, 0) + 1
        self.stage_latency["queue_wait"].observe(queue_wait_s)
        self.stage_latency["service"].observe(service_s)
        self.stage_latency["total"].observe(queue_wait_s + service_s)
        if recall is not None:
            self._recall_sum[tier] = self._recall_sum.get(tier, 0.0) + recall
            self._recall_n[tier] = self._recall_n.get(tier, 0) + 1

    def on_device_batch(
        self, htod_s: float, kernel_s: float, dtoh_s: float, makespan_s: float
    ) -> None:
        """One batch's device schedule: per-engine busy time vs makespan.

        Summing per-batch makespans (rather than wall-clock windows)
        keeps the derived overlap views load-independent: idle gaps
        between batches don't dilute them.
        """
        self._device_batches += 1
        self._device_htod_s += htod_s
        self._device_kernel_s += kernel_s
        self._device_dtoh_s += dtoh_s
        self._device_makespan_s += makespan_s

    # -- derived views ---------------------------------------------------

    def overlap_efficiency(self) -> float:
        """Engine-busy seconds per makespan second across device batches.

        1.0 means fully serial (the streams=1 model); up to 3.0 when
        both copy engines and the SMs are all hidden behind each other.
        """
        if self._device_makespan_s <= 0.0:
            return 0.0
        busy = self._device_htod_s + self._device_kernel_s + self._device_dtoh_s
        return busy / self._device_makespan_s

    def transfer_hidden_fraction(self) -> float:
        """Fraction of PCIe transfer time hidden behind other engines."""
        transfers = self._device_htod_s + self._device_dtoh_s
        if transfers <= 0.0 or self._device_makespan_s <= 0.0:
            return 0.0
        busy = self._device_htod_s + self._device_kernel_s + self._device_dtoh_s
        hidden = busy - self._device_makespan_s
        return min(1.0, max(0.0, hidden / transfers))

    def shed_rate(self) -> float:
        """Fraction of arrivals that were shed."""
        arrived = self.counters["arrived"]
        return self.counters["shed"] / arrived if arrived else 0.0

    def recall_by_tier(self) -> Dict[int, float]:
        """Mean recall of completed requests per quality tier."""
        return {
            t: self._recall_sum[t] / self._recall_n[t]
            for t in sorted(self._recall_n)
            if self._recall_n[t]
        }

    def overall_recall(self) -> Optional[float]:
        """Mean recall over all requests that carried ground truth."""
        n = sum(self._recall_n.values())
        if not n:
            return None
        return sum(self._recall_sum.values()) / n

    def mean_batch_size(self) -> float:
        served = sum(s * c for s, c in self.batch_sizes.items())
        batches = self.counters["batches"]
        return served / batches if batches else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Deterministic JSON-able snapshot of every metric family."""
        recall = self.overall_recall()
        return {
            "counters": dict(sorted(self.counters.items())),
            "shed_rate": round(self.shed_rate(), 6),
            "shed_reasons": dict(sorted(self.shed_reasons.items())),
            "latency": {
                s: self.stage_latency[s].to_dict() for s in self.STAGES
            },
            "queue_depth": {
                "mean": round(self.queue_depth.mean, 3),
                "max": round(self.queue_depth.max, 1),
            },
            "batch_size": {
                "mean": round(self.mean_batch_size(), 3),
                "distribution": {
                    str(s): c for s, c in sorted(self.batch_sizes.items())
                },
            },
            "tiers": {str(t): c for t, c in sorted(self.tier_counts.items())},
            "streams": {
                "device_batches": self._device_batches,
                "htod_s": round(self._device_htod_s, 9),
                "kernel_s": round(self._device_kernel_s, 9),
                "dtoh_s": round(self._device_dtoh_s, 9),
                "makespan_s": round(self._device_makespan_s, 9),
                "overlap_efficiency": round(self.overlap_efficiency(), 6),
                "transfer_hidden_fraction": round(
                    self.transfer_hidden_fraction(), 6
                ),
            },
            "recall": None if recall is None else round(recall, 6),
            "recall_by_tier": {
                str(t): round(r, 6) for t, r in self.recall_by_tier().items()
            },
        }
