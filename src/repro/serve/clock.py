"""Virtual-time asyncio: deterministic clocks for the serving layer.

The serving stack (batcher, admission controller, router) is written
against plain :mod:`asyncio` — ``loop.time()`` for timestamps and
``asyncio.sleep`` for waits — so it runs unchanged on a real event loop.
For loadtests and CI, however, wall clocks are poison: latencies come
from the *simulated* GPU cost model, and arrival processes must be
seeded, so the whole experiment has to be reproducible bit-for-bit.

:class:`VirtualTimeEventLoop` provides that determinism.  It is a
selector event loop whose clock is a plain float that only advances when
every ready callback has run and the next timer is in the future — the
discrete-event-simulation rule.  A loadtest that "runs" for 30 simulated
seconds completes in milliseconds of real time, and two runs with the
same seeds produce identical traces.

Usage::

    from repro.serve.clock import run_virtual

    async def experiment():
        ...
    report = run_virtual(experiment())
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Any, Awaitable, Coroutine, List

__all__ = ["VirtualTimeEventLoop", "gather_all", "run_virtual"]


async def gather_all(*aws: Awaitable[Any]) -> List[Any]:
    """Await every awaitable to completion, then surface the first error.

    ``asyncio.gather`` without ``return_exceptions`` abandons the
    remaining awaits on the first failure — on a shutdown path that
    leaks still-running tasks past ``stop()``.  This helper always runs
    everything to completion (``return_exceptions=True``) and only then
    re-raises the first exception, in argument order, so teardown is
    both complete and deterministic.
    """
    results = await asyncio.gather(*aws, return_exceptions=True)
    for result in results:
        if isinstance(result, BaseException):
            raise result
    return results


class VirtualTimeEventLoop(asyncio.SelectorEventLoop):
    """An event loop whose clock jumps to the next scheduled timer.

    Time starts at 0.0 and advances only via :meth:`_run_once`: when no
    callback is immediately runnable, the clock is set to the earliest
    non-cancelled timer deadline, which makes the base class fire it with
    a zero selector timeout.  No real sleeping ever happens, so the loop
    is exactly as fast as the Python work it schedules and completely
    deterministic for a fixed sequence of scheduling calls.
    """

    def __init__(self) -> None:
        super().__init__()
        self._virtual_now = 0.0

    def time(self) -> float:
        return self._virtual_now

    def _run_once(self) -> None:
        if not self._ready and self._scheduled:
            # Drop cancelled timers first so the clock never advances to
            # a deadline nothing will fire at.
            while self._scheduled and self._scheduled[0]._cancelled:
                handle = heapq.heappop(self._scheduled)
                handle._scheduled = False
            if self._scheduled:
                when = self._scheduled[0]._when
                if when > self._virtual_now:
                    self._virtual_now = when
        super()._run_once()


def run_virtual(main: Coroutine[Any, Any, Any]) -> Any:
    """Run a coroutine to completion on a fresh virtual-time loop.

    The virtual-time twin of :func:`asyncio.run`; returns the coroutine's
    result.  Each call gets an isolated loop starting at ``time() == 0``.
    """
    loop = VirtualTimeEventLoop()
    try:
        return loop.run_until_complete(main)
    finally:
        try:
            _cancel_all_tasks(loop)
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()


def _cancel_all_tasks(loop: asyncio.AbstractEventLoop) -> None:
    tasks = [t for t in asyncio.all_tasks(loop) if not t.done()]
    if not tasks:
        return
    for task in tasks:
        task.cancel()
    loop.run_until_complete(asyncio.gather(*tasks, return_exceptions=True))
