"""Serving engines: uniform batch execution + simulated-GPU pricing.

The serving layer needs two things from an index: *results* for a batch
of queries, and a *service time* to charge against the simulated clock.
Running the fully metered :class:`~repro.core.gpu_kernel.GpuSongIndex`
gives exact timing but executes the serial Python searcher per query —
far too slow for loadtests with thousands of requests.  The engines here
split the two concerns:

- results come from the vectorized lockstep engine
  (:class:`~repro.core.batched.BatchedSongSearcher`), bit-identical to
  the serial searcher and ~10x faster in wall time;
- service time comes from **counter replay**: the per-lane
  :class:`~repro.core.song.SearchStats` the lockstep engine fills
  (iterations, distance computations, structure inserts) are replayed
  through the same :class:`~repro.core.gpu_kernel.WarpMeter` /
  :class:`~repro.simt.cost.CostModel` stack the metered index uses, so a
  batch is priced with the paper's cost model without per-event
  metering.  The replay aggregates events per lane (one ``pop_frontier``
  call for all iterations instead of one per iteration), which is exact
  for every cost primitive because they are all linear in their count
  argument; the residual drift against full metering comes only from
  counts not tracked in ``SearchStats`` (frontier pops beyond one per
  iteration, visited tests on duplicate candidates) and is bounded by a
  drift test.

Three engines cover the index zoo:

- :class:`SimulatedGpuEngine` — one graph + dataset on one device;
- :class:`ShardedServeEngine` — fan-out over a
  :class:`~repro.core.sharding.ShardedSongIndex` (service time = slowest
  shard, per-shard attribution in ``detail``);
- :class:`OnlineServeEngine` — a growable
  :class:`~repro.core.online.OnlineSongIndex` supporting mixed
  search/insert traffic with snapshot caching.
"""

from __future__ import annotations

# lint: hot-path

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batched import BatchedSongSearcher
from repro.core.config import SearchConfig
from repro.core.gpu_kernel import GpuSongIndex, WarpMeter
from repro.core.online import OnlineSongIndex
from repro.core.sharding import ShardedSongIndex
from repro.core.song import SearchStats
from repro.distances import get_metric
from repro.graphs.storage import FixedDegreeGraph
from repro.simt.pipeline import split_counts
from repro.simt.streams import ChunkWork
from repro.simt.warp import Warp

__all__ = [
    "BatchServiceResult",
    "SimulatedGpuEngine",
    "ShardedServeEngine",
    "OnlineServeEngine",
]


@dataclass
class BatchServiceResult:
    """Outcome of one engine batch: results plus the modelled timing.

    ``service_seconds`` is what the device is busy for (the replica
    serializes batches on it); ``detail`` carries engine-specific
    attribution (kernel/transfer split, per-shard stats).
    """

    results: List[List[Tuple[float, int]]]
    service_seconds: float
    detail: Dict[str, object] = field(default_factory=dict)


class SimulatedGpuEngine:
    """One replica: a proximity graph + dataset on one simulated device.

    Parameters
    ----------
    graph:
        Fixed-degree proximity graph.
    data:
        ``(n, d)`` float32 dataset.
    device:
        Simulated device preset name.
    name:
        Replica label used in responses and metrics.
    resident_bytes / allow_oversubscription:
        Forwarded to :class:`GpuSongIndex`'s capacity ledger — an
        over-budget resident footprint raises
        :class:`~repro.simt.memory.DeviceMemoryExceeded` unless
        oversubscription is explicitly allowed.
    """

    def __init__(
        self,
        graph: FixedDegreeGraph,
        data: np.ndarray,
        device: str = "v100",
        name: str = "gpu0",
        resident_bytes: Optional[int] = None,
        allow_oversubscription: bool = False,
    ) -> None:
        self.index = GpuSongIndex(
            graph,
            data,
            device=device,
            resident_bytes=resident_bytes,
            allow_oversubscription=allow_oversubscription,
        )
        self.batched = BatchedSongSearcher(
            graph, self.index.data, parent=self.index.searcher
        )
        self.name = name

    @property
    def device(self):
        return self.index.device

    def run_batch(
        self, queries: np.ndarray, config: SearchConfig
    ) -> BatchServiceResult:
        """Search a ``(B, d)`` batch; price it on the simulated device."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        results, stats = self.batched.search_batch_with_stats(queries, config)
        seconds, detail = self.estimate_batch_seconds(queries, config, stats)
        return BatchServiceResult(results, seconds, detail)

    # -- pricing ---------------------------------------------------------

    def _distance_profile(self, config: SearchConfig, dim: int):
        """``(flops_per_distance_fn, cost_dim)`` used to price distances.

        ``cost_dim`` is the per-point size in 4-byte words the meter
        charges bandwidth for.  The default full-precision profile is
        the metric's flop count over the true dimension; the tiered
        engine overrides this with the compressed store's profile (e.g.
        XOR+popcount over packed signature words).
        """
        metric = get_metric(config.metric)
        return metric.flops_per_distance, dim

    def _chunk_htod_bytes(self, chunk_queries: np.ndarray) -> int:
        """HtoD bytes for one chunk's query upload (hook for subclasses)."""
        return int(chunk_queries.nbytes)

    def _replay_lane(
        self, config: SearchConfig, placement, stats: SearchStats, dim: int
    ) -> Warp:
        """Meter one lane's aggregate counters onto a fresh warp."""
        flops_fn, cost_dim = self._distance_profile(config, dim)
        warp = Warp(self.index.device)
        meter = WarpMeter(warp, config, placement, flops_fn)
        degree = self.index.graph.degree
        # Query staging (mirrors GpuSongIndex.search_batch's kernel).
        # Charged at cost_dim words: the device stages what it stores,
        # which for a compressed tier is the packed code, not the proxy.
        warp.set_stage("locate")
        warp.global_read_coalesced(cost_dim * 4)
        warp.shared_access(cost_dim)
        # Stage 1 aggregate: one pop per iteration plus the adjacency
        # rows and visited probes those pops trigger.
        row_slots = stats.iterations * config.probe_steps * degree
        meter.pop_frontier(stats.iterations)
        meter.read_graph_row(row_slots)
        meter.visited_test(row_slots)
        # Stage 2: every distance this lane computed, plus the seed.
        meter.stage("distance")
        meter.bulk_distance(stats.distance_computations + 1, cost_dim)
        # Stage 3: structure maintenance proportional to accepted work.
        meter.stage("maintain")
        meter.topk_update(stats.iterations)
        meter.push_frontier(stats.visited_inserts + 1)
        meter.visited_insert(stats.visited_inserts + 1)
        return warp

    def chunk_work(
        self,
        queries: np.ndarray,
        config: SearchConfig,
        stats: Sequence[SearchStats],
        num_chunks: int = 1,
    ) -> Tuple[List[ChunkWork], Dict[str, object]]:
        """Price a batch as ``num_chunks`` double-buffer chunks.

        Each chunk's kernel is metered over its own lanes through the
        same counter replay as the whole-batch path, its transfers priced
        from its own byte counts, and its SM demand reported as resident
        warps — the inputs :class:`~repro.simt.streams.DeviceTimeline`
        schedules.  With ``num_chunks=1`` the single chunk carries
        exactly the legacy serial accounting (same lane order, same cost
        calls), which is what keeps the streams=1 serving path
        bit-identical to the pre-stream model.
        """
        placement = self.index.placement(config)
        dim = int(queries.shape[1])
        cost = self.index.launcher.cost_model
        warps_per_group = max(1, config.block_size // self.device.warp_size)
        counts = split_counts(len(stats), num_chunks) if len(stats) else [0]
        chunks: List[ChunkWork] = []
        kernel_total = htod_total = dtoh_total = 0.0
        start = 0
        for i, count in enumerate(counts):  # lint: allow(hot-loop) — O(chunks), not O(lanes)
            lanes = stats[start : start + count]
            chunk_queries = queries[start : start + count]
            start += count
            cycles: List[float] = []
            total_bytes = 0
            for lane in lanes:
                warp = self._replay_lane(config, placement, lane, dim)
                cycles.append(warp.cycles)
                total_bytes += warp.memory.total_global_bytes
            kernel = cost.kernel_time(
                cycles,
                total_bytes,
                placement.shared_bytes_per_warp,
                warps_per_group=warps_per_group,
            )
            htod = cost.transfer_time(self._chunk_htod_bytes(chunk_queries))
            dtoh = cost.transfer_time(len(lanes) * config.k * 8)
            chunks.append(
                ChunkWork(
                    htod=htod,
                    kernel=kernel,
                    dtoh=dtoh,
                    warps=max(1, self.index.warp_demand(config, len(lanes))),
                    label=f"chunk{i}",
                )
            )
            kernel_total += kernel
            htod_total += htod
            dtoh_total += dtoh
        detail = {
            "kernel_seconds": kernel_total,
            "htod_seconds": htod_total,
            "dtoh_seconds": dtoh_total,
            "device": self.device.name,
            "num_chunks": len(chunks),
        }
        return chunks, detail

    def auto_num_chunks(self, htod_bytes: int, max_chunks: int) -> int:
        """Cost-model-optimal double-buffer split for one batch.

        Splitting a batch into ``n`` chunks lets later chunks' HtoD hide
        under earlier chunks' kernels, shrinking the exposed first-chunk
        copy to ``latency + bytes/(n·bw)`` — but every extra chunk adds
        one PCIe latency on each in-order copy engine.  Balancing the
        two gives ``n* ≈ sqrt(bytes / (bw · latency))``: small batches
        (latency-dominated transfers, the paper's Fig. 10 regime) stay
        whole, multi-megabyte batches split toward ``max_chunks``.
        """
        if max_chunks <= 1 or htod_bytes <= 0:
            return 1
        device = self.device
        lat = device.pcie_latency_us * 1e-6
        if lat <= 0.0:
            return max_chunks
        bw = device.pcie_bandwidth_gbs * 1e9
        n = int(round((htod_bytes / (bw * lat)) ** 0.5))
        return max(1, min(max_chunks, n))

    def chunked_batch(
        self,
        queries: np.ndarray,
        config: SearchConfig,
        num_chunks: Optional[int] = None,
        max_chunks: int = 1,
    ) -> Tuple[List[List[Tuple[float, int]]], List[ChunkWork], Dict[str, object]]:
        """Search a batch and return per-chunk priced work for streaming.

        The multi-stream replica path: results come from the lockstep
        engine exactly as :meth:`run_batch`, but the pricing is split
        into chunks the caller schedules on a
        :class:`~repro.simt.streams.DeviceTimeline` instead of a single
        serial charge.  ``num_chunks=None`` picks the split with
        :meth:`auto_num_chunks` (bounded by ``max_chunks``, typically
        the replica's stream count).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        results, stats = self.batched.search_batch_with_stats(queries, config)
        if num_chunks is None:
            num_chunks = self.auto_num_chunks(int(queries.nbytes), max_chunks)
        chunks, detail = self.chunk_work(queries, config, stats, num_chunks)
        return results, chunks, detail

    def estimate_batch_seconds(
        self,
        queries: np.ndarray,
        config: SearchConfig,
        stats: Sequence[SearchStats],
    ) -> Tuple[float, Dict[str, object]]:
        """Modelled launch seconds for a batch with the given lane stats."""
        chunks, detail = self.chunk_work(queries, config, stats, num_chunks=1)
        c = chunks[0]
        return c.kernel + c.htod + c.dtoh, detail


class ShardedServeEngine:
    """Scatter-gather over a sharded index; slowest shard sets the time."""

    def __init__(self, index: ShardedSongIndex, name: str = "sharded0") -> None:
        self.index = index
        self.name = name

    def run_batch(
        self, queries: np.ndarray, config: SearchConfig
    ) -> BatchServiceResult:
        """Fan a batch across every shard and merge the top-k lists."""
        results, timing = self.index.search_batch(queries, config)
        per_shard = timing["per_shard"]
        detail = {
            "per_shard": per_shard,
            "slowest_shard": timing["slowest_shard"],
            "shard_imbalance": timing["shard_imbalance"],
        }
        return BatchServiceResult(results, timing["wall_seconds"], detail)


class OnlineServeEngine:
    """A growable index serving mixed search and insert traffic.

    Searches run against a frozen snapshot of the current graph, priced
    like :class:`SimulatedGpuEngine`; the snapshot engine is cached keyed
    on the index's write ``generation`` (not size or object identity —
    pruning rewires existing vertices without changing ``len``).
    Refreshing a snapshot is not free: the new graph + data must reach
    the search device, and the stream model charges that once per
    refresh as a transfer contending with search traffic
    (:meth:`consume_snapshot_dtoh_seconds`).  Inserts are priced as one
    ``ef_construction`` greedy search via the same counter replay (the
    insertion search dominates an insert's cost; the bidirectional
    connect is a few degree-bounded updates).
    """

    def __init__(self, index: OnlineSongIndex, name: str = "online0") -> None:
        self.index = index
        self.name = name
        # The snapshot cache is only touched while the owning Replica
        # holds its rw-lock (read side for lazy rebuild during searches,
        # write side for inserts); the aio analyzer enforces the declared
        # guard on any future coroutine that mutates these directly.
        self._snapshot_engine: Optional[SimulatedGpuEngine] = None  # aio: guarded-by(Replica._rw)
        self._snapshot_generation = -1  # aio: guarded-by(Replica._rw)
        self._snapshot_dtoh_owed = 0.0  # aio: guarded-by(Replica._rw)

    @property
    def device(self):
        """Device preset the snapshots are priced on."""
        return self.index.device

    def _engine(self) -> SimulatedGpuEngine:
        if (
            self._snapshot_engine is None
            or self._snapshot_generation != self.index.generation
        ):
            self._snapshot_engine = SimulatedGpuEngine(
                self.index.snapshot_graph(),
                self.index.data.copy(),
                device=self.index.device,
                name=self.name,
            )
            self._snapshot_generation = self.index.generation
            gpu = self._snapshot_engine.index
            self._snapshot_dtoh_owed = gpu.launcher.cost_model.transfer_time(
                gpu.index_memory_bytes() + gpu.dataset_memory_bytes()
            )
        return self._snapshot_engine

    def consume_snapshot_dtoh_seconds(self) -> float:
        """Transfer seconds owed for a snapshot refreshed since last call.

        Non-zero exactly once per rebuilt snapshot; the multi-stream
        replica charges it on the DtoH copy engine ahead of the batch's
        own transfers, so snapshot shipping contends with search streams
        instead of being free.
        """
        owed = self._snapshot_dtoh_owed
        self._snapshot_dtoh_owed = 0.0
        return owed

    def run_batch(
        self, queries: np.ndarray, config: SearchConfig
    ) -> BatchServiceResult:
        """Search the current snapshot (built lazily, cached until write)."""
        return self._engine().run_batch(queries, config)

    def chunked_batch(
        self,
        queries: np.ndarray,
        config: SearchConfig,
        num_chunks: Optional[int] = None,
        max_chunks: int = 1,
    ):
        """Chunked pricing against the current snapshot (streams path)."""
        return self._engine().chunked_batch(
            queries, config, num_chunks, max_chunks
        )

    def run_inserts(self, vectors: np.ndarray) -> BatchServiceResult:
        """Ingest ``(B, d)`` vectors; returns assigned ids in ``detail``.

        Service time models each insert as an ``ef_construction``-deep
        greedy search on the pre-insert snapshot.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        size_before = len(self.index)
        seconds = 0.0
        if size_before > 0:
            engine = self._engine()
            ef = self.index.ef_construction
            synthetic = SearchStats()
            synthetic.iterations = ef
            synthetic.distance_computations = ef * self.index.max_degree
            synthetic.visited_inserts = ef
            seconds, _ = engine.estimate_batch_seconds(
                vectors,
                SearchConfig(k=min(ef, size_before), queue_size=ef),
                [synthetic] * len(vectors),
            )
        ids = self.index.add(vectors)
        # No manual invalidation: the next _engine() call sees a newer
        # index generation and rebuilds (and re-prices) the snapshot.
        return BatchServiceResult(
            results=[],
            service_seconds=seconds,
            detail={"inserted_ids": ids, "size": len(self.index)},
        )
