"""Serving engines: uniform batch execution + simulated-GPU pricing.

The serving layer needs two things from an index: *results* for a batch
of queries, and a *service time* to charge against the simulated clock.
Running the fully metered :class:`~repro.core.gpu_kernel.GpuSongIndex`
gives exact timing but executes the serial Python searcher per query —
far too slow for loadtests with thousands of requests.  The engines here
split the two concerns:

- results come from the vectorized lockstep engine
  (:class:`~repro.core.batched.BatchedSongSearcher`), bit-identical to
  the serial searcher and ~10x faster in wall time;
- service time comes from **counter replay**: the per-lane
  :class:`~repro.core.song.SearchStats` the lockstep engine fills
  (iterations, distance computations, structure inserts) are replayed
  through the same :class:`~repro.core.gpu_kernel.WarpMeter` /
  :class:`~repro.simt.cost.CostModel` stack the metered index uses, so a
  batch is priced with the paper's cost model without per-event
  metering.  The replay aggregates events per lane (one ``pop_frontier``
  call for all iterations instead of one per iteration), which is exact
  for every cost primitive because they are all linear in their count
  argument; the residual drift against full metering comes only from
  counts not tracked in ``SearchStats`` (frontier pops beyond one per
  iteration, visited tests on duplicate candidates) and is bounded by a
  drift test.

Three engines cover the index zoo:

- :class:`SimulatedGpuEngine` — one graph + dataset on one device;
- :class:`ShardedServeEngine` — fan-out over a
  :class:`~repro.core.sharding.ShardedSongIndex` (service time = slowest
  shard, per-shard attribution in ``detail``);
- :class:`OnlineServeEngine` — a growable
  :class:`~repro.core.online.OnlineSongIndex` supporting mixed
  search/insert traffic with snapshot caching.
"""

from __future__ import annotations

# lint: hot-path

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batched import BatchedSongSearcher
from repro.core.config import SearchConfig
from repro.core.gpu_kernel import GpuSongIndex, WarpMeter
from repro.core.online import OnlineSongIndex
from repro.core.sharding import ShardedSongIndex
from repro.core.song import SearchStats
from repro.distances import get_metric
from repro.graphs.storage import FixedDegreeGraph
from repro.simt.warp import Warp

__all__ = [
    "BatchServiceResult",
    "SimulatedGpuEngine",
    "ShardedServeEngine",
    "OnlineServeEngine",
]


@dataclass
class BatchServiceResult:
    """Outcome of one engine batch: results plus the modelled timing.

    ``service_seconds`` is what the device is busy for (the replica
    serializes batches on it); ``detail`` carries engine-specific
    attribution (kernel/transfer split, per-shard stats).
    """

    results: List[List[Tuple[float, int]]]
    service_seconds: float
    detail: Dict[str, object] = field(default_factory=dict)


class SimulatedGpuEngine:
    """One replica: a proximity graph + dataset on one simulated device.

    Parameters
    ----------
    graph:
        Fixed-degree proximity graph.
    data:
        ``(n, d)`` float32 dataset.
    device:
        Simulated device preset name.
    name:
        Replica label used in responses and metrics.
    """

    def __init__(
        self,
        graph: FixedDegreeGraph,
        data: np.ndarray,
        device: str = "v100",
        name: str = "gpu0",
    ) -> None:
        self.index = GpuSongIndex(graph, data, device=device)
        self.batched = BatchedSongSearcher(
            graph, self.index.data, parent=self.index.searcher
        )
        self.name = name

    @property
    def device(self):
        return self.index.device

    def run_batch(
        self, queries: np.ndarray, config: SearchConfig
    ) -> BatchServiceResult:
        """Search a ``(B, d)`` batch; price it on the simulated device."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        results, stats = self.batched.search_batch_with_stats(queries, config)
        seconds, detail = self.estimate_batch_seconds(queries, config, stats)
        return BatchServiceResult(results, seconds, detail)

    # -- pricing ---------------------------------------------------------

    def _replay_lane(
        self, config: SearchConfig, placement, stats: SearchStats, dim: int
    ) -> Warp:
        """Meter one lane's aggregate counters onto a fresh warp."""
        metric = get_metric(config.metric)
        warp = Warp(self.index.device)
        meter = WarpMeter(warp, config, placement, metric.flops_per_distance)
        degree = self.index.graph.degree
        # Query staging (mirrors GpuSongIndex.search_batch's kernel).
        warp.set_stage("locate")
        warp.global_read_coalesced(dim * 4)
        warp.shared_access(dim)
        # Stage 1 aggregate: one pop per iteration plus the adjacency
        # rows and visited probes those pops trigger.
        row_slots = stats.iterations * config.probe_steps * degree
        meter.pop_frontier(stats.iterations)
        meter.read_graph_row(row_slots)
        meter.visited_test(row_slots)
        # Stage 2: every distance this lane computed, plus the seed.
        meter.stage("distance")
        meter.bulk_distance(stats.distance_computations + 1, dim)
        # Stage 3: structure maintenance proportional to accepted work.
        meter.stage("maintain")
        meter.topk_update(stats.iterations)
        meter.push_frontier(stats.visited_inserts + 1)
        meter.visited_insert(stats.visited_inserts + 1)
        return warp

    def estimate_batch_seconds(
        self,
        queries: np.ndarray,
        config: SearchConfig,
        stats: Sequence[SearchStats],
    ) -> Tuple[float, Dict[str, object]]:
        """Modelled launch seconds for a batch with the given lane stats."""
        placement = self.index.placement(config)
        dim = int(queries.shape[1])
        cycles: List[float] = []
        total_bytes = 0
        for lane in stats:
            warp = self._replay_lane(config, placement, lane, dim)
            cycles.append(warp.cycles)
            total_bytes += warp.memory.total_global_bytes
        cost = self.index.launcher.cost_model
        kernel = cost.kernel_time(
            cycles,
            total_bytes,
            placement.shared_bytes_per_warp,
            warps_per_group=max(1, config.block_size // self.device.warp_size),
        )
        htod = cost.transfer_time(int(queries.nbytes))
        dtoh = cost.transfer_time(len(stats) * config.k * 8)
        detail = {
            "kernel_seconds": kernel,
            "htod_seconds": htod,
            "dtoh_seconds": dtoh,
            "device": self.device.name,
        }
        return kernel + htod + dtoh, detail


class ShardedServeEngine:
    """Scatter-gather over a sharded index; slowest shard sets the time."""

    def __init__(self, index: ShardedSongIndex, name: str = "sharded0") -> None:
        self.index = index
        self.name = name

    def run_batch(
        self, queries: np.ndarray, config: SearchConfig
    ) -> BatchServiceResult:
        """Fan a batch across every shard and merge the top-k lists."""
        results, timing = self.index.search_batch(queries, config)
        per_shard = timing["per_shard"]
        detail = {
            "per_shard": per_shard,
            "slowest_shard": timing["slowest_shard"],
            "shard_imbalance": timing["shard_imbalance"],
        }
        return BatchServiceResult(results, timing["wall_seconds"], detail)


class OnlineServeEngine:
    """A growable index serving mixed search and insert traffic.

    Searches run against a frozen snapshot of the current graph, priced
    like :class:`SimulatedGpuEngine`; the snapshot engine is cached and
    invalidated on insert.  Inserts are priced as one ``ef_construction``
    greedy search via the same counter replay (the insertion search
    dominates an insert's cost; the bidirectional connect is a few
    degree-bounded updates).
    """

    def __init__(self, index: OnlineSongIndex, name: str = "online0") -> None:
        self.index = index
        self.name = name
        self._snapshot_engine: Optional[SimulatedGpuEngine] = None
        self._snapshot_size = -1

    def _engine(self) -> SimulatedGpuEngine:
        if self._snapshot_engine is None or self._snapshot_size != len(self.index):
            self._snapshot_engine = SimulatedGpuEngine(
                self.index.snapshot_graph(),
                self.index.data.copy(),
                device=self.index.device,
                name=self.name,
            )
            self._snapshot_size = len(self.index)
        return self._snapshot_engine

    def run_batch(
        self, queries: np.ndarray, config: SearchConfig
    ) -> BatchServiceResult:
        """Search the current snapshot (built lazily, cached until write)."""
        return self._engine().run_batch(queries, config)

    def run_inserts(self, vectors: np.ndarray) -> BatchServiceResult:
        """Ingest ``(B, d)`` vectors; returns assigned ids in ``detail``.

        Service time models each insert as an ``ef_construction``-deep
        greedy search on the pre-insert snapshot.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        size_before = len(self.index)
        seconds = 0.0
        if size_before > 0:
            engine = self._engine()
            ef = self.index.ef_construction
            synthetic = SearchStats()
            synthetic.iterations = ef
            synthetic.distance_computations = ef * self.index.max_degree
            synthetic.visited_inserts = ef
            seconds, _ = engine.estimate_batch_seconds(
                vectors,
                SearchConfig(k=min(ef, size_before), queue_size=ef),
                [synthetic] * len(vectors),
            )
        ids = self.index.add(vectors)
        self._snapshot_engine = None  # snapshot is stale now
        return BatchServiceResult(
            results=[],
            service_seconds=seconds,
            detail={"inserted_ids": ids, "size": len(self.index)},
        )
