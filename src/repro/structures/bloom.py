"""Bloom filter visited-set backend.

Section IV-B of the paper: the visited test tolerates false positives (a
small recall loss) but not false negatives (re-expansion and duplicate
queue insertions).  A Bloom filter guarantees zero false negatives in a
small constant memory footprint — the paper's sizing example is ~300
32-bit words for 1,000 insertions at <1% false-positive rate.

The filter does not support deletion, so it cannot back the
visited-deletion optimization (that needs the Cuckoo filter).
"""

from __future__ import annotations

import math

import numpy as np


def optimal_parameters(expected_items: int, fp_rate: float) -> tuple:
    """Return ``(num_bits, num_hashes)`` for a target false-positive rate."""
    if expected_items <= 0:
        raise ValueError("expected_items must be positive")
    if not 0.0 < fp_rate < 1.0:
        raise ValueError("fp_rate must be in (0, 1)")
    num_bits = int(math.ceil(-expected_items * math.log(fp_rate) / (math.log(2) ** 2)))
    num_hashes = max(1, int(round(num_bits / expected_items * math.log(2))))
    return num_bits, num_hashes


class BloomFilter:
    """Fixed-size Bloom filter over non-negative integer keys.

    Parameters
    ----------
    num_bits:
        Size of the bit array; rounded up to a multiple of 32 so the
        array packs into 32-bit words as it would on a GPU.
    num_hashes:
        Number of hash probes per key.
    """

    def __init__(self, num_bits: int, num_hashes: int = 4) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_bits = ((num_bits + 31) // 32) * 32
        self.num_hashes = num_hashes
        self._words = np.zeros(self.num_bits // 32, dtype=np.uint32)
        self._count = 0
        #: Memory probes performed (accounting).
        self.probes = 0

    @classmethod
    def for_items(cls, expected_items: int, fp_rate: float = 0.01) -> "BloomFilter":
        """Construct a filter sized for ``expected_items`` at ``fp_rate``."""
        bits, hashes = optimal_parameters(expected_items, fp_rate)
        return cls(bits, hashes)

    def __len__(self) -> int:
        """Number of *insert calls* for distinct-looking keys (approximate)."""
        return self._count

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    def _positions(self, key: int):
        # Double hashing: h1 + i*h2, the standard Kirsch–Mitzenmacher scheme.
        h1 = (key * 2654435761) & 0xFFFFFFFF
        h2 = ((key ^ 0x9E3779B9) * 40503) & 0xFFFFFFFF | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def insert(self, key: int) -> bool:
        """Set the key's bits.  Returns False if all bits were already set."""
        if key < 0:
            raise ValueError("keys must be non-negative")
        was_present = True
        words = self._words
        for pos in self._positions(key):
            self.probes += 1
            w, b = divmod(pos, 32)
            mask = np.uint32(1 << b)
            if not (words[w] & mask):
                was_present = False
                words[w] |= mask
        if not was_present:
            self._count += 1
        return not was_present

    def contains(self, key: int) -> bool:
        """Membership test.  May return false positives, never false negatives."""
        if key < 0:
            raise ValueError("keys must be non-negative")
        words = self._words
        for pos in self._positions(key):
            self.probes += 1
            w, b = divmod(pos, 32)
            if not (words[w] & np.uint32(1 << b)):
                return False
        return True

    def delete(self, key: int) -> bool:
        """Bloom filters cannot delete; always raises."""
        raise NotImplementedError("Bloom filter does not support deletion")

    def clear(self) -> None:
        """Reset all bits."""
        self._words[:] = 0
        self._count = 0

    def expected_fp_rate(self) -> float:
        """Theoretical false-positive rate at the current fill level."""
        k = self.num_hashes
        n = self._count
        m = self.num_bits
        return (1.0 - math.exp(-k * n / m)) ** k

    def memory_bytes(self) -> int:
        """Footprint of the bit array."""
        return self.num_bits // 8
