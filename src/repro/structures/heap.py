"""Binary heaps keyed by ``(distance, vertex id)``.

These are the reference priority queues of Algorithm 1: a min-heap for the
search frontier ``q`` and a max-heap for the result set ``topk``.  Ties on
distance break on vertex id so the search is fully deterministic.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

Entry = Tuple[float, int]


class MinHeap:
    """Array-backed binary min-heap of ``(distance, vertex)`` pairs."""

    def __init__(self) -> None:
        self._items: List[Entry] = []

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[Entry]:
        """Iterate entries in *storage* order (not sorted)."""
        return iter(self._items)

    def _less(self, a: Entry, b: Entry) -> bool:
        return a < b

    def push(self, dist: float, vertex: int) -> None:
        """Insert an entry; O(log n)."""
        items = self._items
        items.append((dist, vertex))
        i = len(items) - 1
        while i > 0:
            parent = (i - 1) >> 1
            if self._less(items[i], items[parent]):
                items[i], items[parent] = items[parent], items[i]
                i = parent
            else:
                break

    def peek(self) -> Entry:
        """Return the best entry without removing it."""
        if not self._items:
            raise IndexError("peek from empty heap")
        return self._items[0]

    def pop(self) -> Entry:
        """Remove and return the best entry; O(log n)."""
        items = self._items
        if not items:
            raise IndexError("pop from empty heap")
        top = items[0]
        last = items.pop()
        if items:
            items[0] = last
            self._sift_down(0)
        return top

    def _sift_down(self, i: int) -> None:
        items = self._items
        n = len(items)
        while True:
            left = 2 * i + 1
            right = left + 1
            best = i
            if left < n and self._less(items[left], items[best]):
                best = left
            if right < n and self._less(items[right], items[best]):
                best = right
            if best == i:
                return
            items[i], items[best] = items[best], items[i]
            i = best

    def to_sorted_list(self) -> List[Entry]:
        """Return entries best-first without mutating the heap."""
        ascending = sorted(self._items)
        return ascending if self._less((0.0, 0), (1.0, 0)) else ascending[::-1]


class MaxHeap(MinHeap):
    """Array-backed binary max-heap of ``(distance, vertex)`` pairs."""

    def _less(self, a: Entry, b: Entry) -> bool:
        return a > b


class TopKMaxHeap(MaxHeap):
    """A max-heap capped at ``k`` entries holding the best-so-far results.

    ``push_bounded`` keeps the *k smallest* distances seen: when full, a new
    entry replaces the current maximum only if it is strictly better.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        super().__init__()
        self.k = k

    def push_bounded(self, dist: float, vertex: int) -> Optional[Entry]:
        """Insert, evicting the worst entry if over capacity.

        Returns the evicted entry, or ``None`` if nothing was evicted.
        ``None`` is also returned when the entry was simply inserted.
        If the heap is full and the candidate is not better than the current
        worst, the candidate itself is returned (it was "evicted on arrival").
        """
        if len(self) < self.k:
            self.push(dist, vertex)
            return None
        worst = self.peek()
        if (dist, vertex) < worst:
            evicted = self.pop()
            self.push(dist, vertex)
            return evicted
        return (dist, vertex)

    def is_full(self) -> bool:
        return len(self) >= self.k

    def worst_distance(self) -> float:
        """Distance of the current k-th best, or +inf if not yet full."""
        if len(self) < self.k:
            return float("inf")
        return self.peek()[0]
