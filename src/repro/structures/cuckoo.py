"""Cuckoo filter visited-set backend (Fan et al., CoNEXT 2014).

The visited-deletion optimization (Section IV-E of the paper) needs a
probabilistic set that supports *deletion*, which a Bloom filter cannot do.
A Cuckoo filter stores small fingerprints in two candidate buckets per key
(partial-key cuckoo hashing), so a stored key can later be removed by
erasing its fingerprint.

Like the Bloom filter it admits false positives (fingerprint collisions)
and guarantees no false negatives for keys currently stored.
"""

from __future__ import annotations

from typing import List


def _hash32(x: int) -> int:
    x = (x ^ (x >> 16)) * 0x45D9F3B & 0xFFFFFFFF
    x = (x ^ (x >> 16)) * 0x45D9F3B & 0xFFFFFFFF
    return (x ^ (x >> 16)) & 0xFFFFFFFF


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class CuckooFilter:
    """Bucketized cuckoo filter over non-negative integer keys.

    Parameters
    ----------
    capacity:
        Number of keys the filter should comfortably hold.  The bucket
        array is sized with ~84% target load (4-slot buckets).
    fingerprint_bits:
        Fingerprint width; larger means fewer false positives.
    bucket_size:
        Slots per bucket (4 is the standard sweet spot).
    max_kicks:
        Eviction-chain bound before insert declares the filter full.
    seed:
        Seed for the eviction choice RNG, so runs are reproducible.
    """

    def __init__(
        self,
        capacity: int,
        fingerprint_bits: int = 12,
        bucket_size: int = 4,
        max_kicks: int = 500,
        seed: int = 0x5EED,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 4 <= fingerprint_bits <= 30:
            raise ValueError("fingerprint_bits must be in [4, 30]")
        if bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        self.capacity = capacity
        self.fingerprint_bits = fingerprint_bits
        self.bucket_size = bucket_size
        self.max_kicks = max_kicks
        self.num_buckets = _next_pow2(max(2, int(capacity / (bucket_size * 0.84)) + 1))
        self._mask = self.num_buckets - 1
        self._buckets: List[List[int]] = [[] for _ in range(self.num_buckets)]
        self._size = 0
        self._rng_state = seed & 0xFFFFFFFF
        #: Memory probes performed (accounting).
        self.probes = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    # -- hashing ---------------------------------------------------------

    def _fingerprint(self, key: int) -> int:
        fp = _hash32(key ^ 0xA5A5A5A5) & ((1 << self.fingerprint_bits) - 1)
        return fp if fp != 0 else 1  # 0 is reserved for "empty"

    def _index1(self, key: int) -> int:
        return _hash32(key) & self._mask

    def _alt_index(self, index: int, fp: int) -> int:
        return (index ^ _hash32(fp)) & self._mask

    def _rand(self, n: int) -> int:
        # xorshift32 — deterministic eviction choices.
        x = self._rng_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._rng_state = x
        return x % n

    # -- operations --------------------------------------------------------

    def insert(self, key: int) -> bool:
        """Insert ``key``.  Returns False if it already appears present.

        Raises
        ------
        OverflowError
            If the eviction chain exceeds ``max_kicks`` (filter full).
        """
        if key < 0:
            raise ValueError("keys must be non-negative")
        fp = self._fingerprint(key)
        i1 = self._index1(key)
        i2 = self._alt_index(i1, fp)
        self.probes += 2
        if fp in self._buckets[i1] or fp in self._buckets[i2]:
            return False
        for i in (i1, i2):
            if len(self._buckets[i]) < self.bucket_size:
                self._buckets[i].append(fp)
                self._size += 1
                return True
        # Both buckets full: relocate existing fingerprints.
        i = i1 if self._rand(2) == 0 else i2
        for _ in range(self.max_kicks):
            self.probes += 1
            slot = self._rand(self.bucket_size)
            fp, self._buckets[i][slot] = self._buckets[i][slot], fp
            i = self._alt_index(i, fp)
            if len(self._buckets[i]) < self.bucket_size:
                self._buckets[i].append(fp)
                self._size += 1
                return True
        raise OverflowError(
            f"cuckoo filter is full (capacity={self.capacity}, size={self._size})"
        )

    def contains(self, key: int) -> bool:
        """Membership test; false positives possible, no false negatives."""
        if key < 0:
            raise ValueError("keys must be non-negative")
        fp = self._fingerprint(key)
        i1 = self._index1(key)
        i2 = self._alt_index(i1, fp)
        self.probes += 2
        return fp in self._buckets[i1] or fp in self._buckets[i2]

    def delete(self, key: int) -> bool:
        """Remove one copy of the key's fingerprint; False if absent."""
        if key < 0:
            raise ValueError("keys must be non-negative")
        fp = self._fingerprint(key)
        i1 = self._index1(key)
        i2 = self._alt_index(i1, fp)
        self.probes += 2
        for i in (i1, i2):
            bucket = self._buckets[i]
            if fp in bucket:
                bucket.remove(fp)
                self._size -= 1
                return True
        return False

    def clear(self) -> None:
        """Remove every fingerprint, keeping the allocation."""
        for bucket in self._buckets:
            bucket.clear()
        self._size = 0

    def load_factor(self) -> float:
        """Fraction of slots occupied."""
        return self._size / (self.num_buckets * self.bucket_size)

    def memory_bytes(self) -> int:
        """Footprint assuming packed fingerprint slots."""
        bits = self.num_buckets * self.bucket_size * self.fingerprint_bits
        return (bits + 7) // 8
