"""Search-time data structures designed for fixed memory footprints.

These mirror the structures SONG keeps in GPU shared/local memory:

- :class:`~repro.structures.heap.MinHeap` / ``MaxHeap`` — reference binary
  heaps used by the CPU Algorithm 1.
- :class:`~repro.structures.minmax_heap.SymmetricMinMaxHeap` — the bounded
  double-ended priority queue from the paper (Arvind & Rangan 1999).
- :class:`~repro.structures.hash_table.OpenAddressingSet` — linear-probing
  hash set with deletion (tombstone-free, via backward-shift).
- :class:`~repro.structures.bloom.BloomFilter` — no false negatives, small
  constant memory, no deletion.
- :class:`~repro.structures.cuckoo.CuckooFilter` — probabilistic set *with*
  deletion, enabling the visited-deletion optimization.
- :class:`~repro.structures.visited.VisitedSet` — facade selecting a backend.
- :mod:`~repro.structures.soa` — structure-of-arrays batched frontier and
  top-K pools (packed uint64 keys) for the lockstep multi-query engine.
"""

from repro.structures.heap import MaxHeap, MinHeap
from repro.structures.minmax_heap import BoundedPriorityQueue, SymmetricMinMaxHeap
from repro.structures.hash_table import OpenAddressingSet
from repro.structures.bloom import BloomFilter
from repro.structures.cuckoo import CuckooFilter
from repro.structures.visited import VisitedBackend, VisitedSet
from repro.structures.device_layout import FlatHashSet, FlatMinMaxHeap
from repro.structures.soa import (
    PAD_KEY,
    BatchedFrontier,
    BatchedTopK,
    pack_keys,
    unpack_distances,
    unpack_ids,
)

__all__ = [
    "PAD_KEY",
    "BatchedFrontier",
    "BatchedTopK",
    "pack_keys",
    "unpack_distances",
    "unpack_ids",
    "FlatMinMaxHeap",
    "FlatHashSet",
    "MinHeap",
    "MaxHeap",
    "SymmetricMinMaxHeap",
    "BoundedPriorityQueue",
    "OpenAddressingSet",
    "BloomFilter",
    "CuckooFilter",
    "VisitedSet",
    "VisitedBackend",
]
