"""Facade over the visited-set backends.

The SONG searcher asks only for ``insert`` / ``contains`` / ``delete`` /
``memory_bytes``; :class:`VisitedSet` routes those calls to the configured
backend and records which operations the search performed (for the SIMT
cost model).
"""

from __future__ import annotations

import enum

from repro.structures.bloom import BloomFilter
from repro.structures.cuckoo import CuckooFilter
from repro.structures.hash_table import OpenAddressingSet


class VisitedBackend(str, enum.Enum):
    """Available implementations of the visited set."""

    HASH_TABLE = "hashtable"
    BLOOM = "bloom"
    CUCKOO = "cuckoo"
    PYSET = "pyset"  # exact reference backend (unbounded, for testing)

    def supports_deletion(self) -> bool:
        """Whether the backend can honour the visited-deletion optimization."""
        return self in (VisitedBackend.HASH_TABLE, VisitedBackend.CUCKOO, VisitedBackend.PYSET)


class _PySetBackend:
    """Reference backend: a plain Python set (unbounded memory)."""

    def __init__(self) -> None:
        self._set = set()
        self.probes = 0

    def __len__(self) -> int:
        return len(self._set)

    def insert(self, key: int) -> bool:
        self.probes += 1
        if key in self._set:
            return False
        self._set.add(key)
        return True

    def contains(self, key: int) -> bool:
        self.probes += 1
        return key in self._set

    def delete(self, key: int) -> bool:
        self.probes += 1
        if key in self._set:
            self._set.remove(key)
            return True
        return False

    def clear(self) -> None:
        self._set.clear()

    def memory_bytes(self) -> int:
        # CPython set entries are ~60 bytes each; we report the GPU-relevant
        # number: 4 bytes per stored 32-bit key.
        return 4 * len(self._set)


def _make_backend(backend: VisitedBackend, capacity: int, fp_rate: float):
    if backend == VisitedBackend.HASH_TABLE:
        return OpenAddressingSet(capacity)
    if backend == VisitedBackend.BLOOM:
        return BloomFilter.for_items(capacity, fp_rate)
    if backend == VisitedBackend.CUCKOO:
        return CuckooFilter(capacity)
    if backend == VisitedBackend.PYSET:
        return _PySetBackend()
    raise ValueError(f"unknown visited backend: {backend!r}")


class VisitedSet:
    """The ``visited`` structure of Algorithm 1, backend-switchable.

    Parameters
    ----------
    backend:
        Which implementation to use.
    capacity:
        Expected number of stored keys.  With the visited-deletion
        optimization this is bounded by 2K; otherwise it must cover the
        whole search frontier.
    fp_rate:
        Target false-positive rate for the Bloom backend.
    """

    def __init__(
        self,
        backend: VisitedBackend = VisitedBackend.HASH_TABLE,
        capacity: int = 1024,
        fp_rate: float = 0.01,
        auto_grow: bool = True,
    ) -> None:
        self.backend = VisitedBackend(backend)
        self.capacity = capacity
        self.fp_rate = fp_rate
        self.auto_grow = auto_grow
        self._impl = _make_backend(self.backend, capacity, fp_rate)
        # Shadow of the stored keys, used only to rebuild on growth (the
        # CUDA analogue is re-allocating the table in global memory).
        self._shadow = set()
        #: insert + contains + delete calls issued by the search.
        self.ops = 0
        #: Times the table overflowed and was reallocated at 2x capacity.
        self.grow_events = 0

    def __len__(self) -> int:
        return len(self._impl)

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    def insert(self, key: int) -> bool:
        """Mark ``key`` visited.  Returns False if already marked."""
        self.ops += 1
        try:
            added = self._impl.insert(key)
        except OverflowError:
            if not self.auto_grow:
                raise
            self._grow()
            added = self._impl.insert(key)
        if added:
            self._shadow.add(key)
        return added

    def _grow(self) -> None:
        """Reallocate the backend at double capacity and re-insert keys."""
        self.capacity *= 2
        self.grow_events += 1
        self._impl = _make_backend(self.backend, self.capacity, self.fp_rate)
        for key in self._shadow:
            self._impl.insert(key)

    def contains(self, key: int) -> bool:
        """Visited test (may be a false positive on probabilistic backends)."""
        self.ops += 1
        return self._impl.contains(key)

    def delete(self, key: int) -> bool:
        """Unmark ``key`` (visited-deletion optimization)."""
        if not self.backend.supports_deletion():
            raise NotImplementedError(
                f"{self.backend.value} backend does not support deletion"
            )
        self.ops += 1
        removed = self._impl.delete(key)
        if removed:
            self._shadow.discard(key)
        return removed

    def supports_deletion(self) -> bool:
        return self.backend.supports_deletion()

    def clear(self) -> None:
        self._impl.clear()
        self._shadow.clear()

    def memory_bytes(self) -> int:
        """GPU memory footprint of the backing store."""
        return self._impl.memory_bytes()

    @property
    def probes(self) -> int:
        """Memory probes issued by the backend (cost accounting)."""
        return self._impl.probes
