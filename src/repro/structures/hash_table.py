"""Open-addressing hash set with linear probing.

This is the GPU-friendly ``visited`` table from Section IV-B of the paper:
a fixed-length slot array, no dynamic allocation, linear probing for
collisions.  Deletion uses the classic backward-shift algorithm so probe
chains stay intact without tombstones (tombstones would grow unboundedly
under the visited-deletion workload).

Keys are non-negative integers (vertex ids).  Capacity is fixed at
construction — inserting beyond the load limit raises, mirroring how the
CUDA kernel would overflow its shared-memory allocation.
"""

from __future__ import annotations

from typing import Iterator, List

_EMPTY = -1


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class OpenAddressingSet:
    """Fixed-capacity linear-probing hash set of non-negative ints."""

    #: Maximum load factor before insert refuses (keeps probes short).
    MAX_LOAD = 0.75

    def __init__(self, capacity: int) -> None:
        """Create a set able to hold ``capacity`` keys.

        The slot array is sized to the next power of two at least
        ``capacity / MAX_LOAD`` so probing stays O(1) expected.
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._slots_len = _next_pow2(max(8, int(capacity / self.MAX_LOAD) + 1))
        self._mask = self._slots_len - 1
        self._slots: List[int] = [_EMPTY] * self._slots_len
        self._size = 0
        #: Total probe steps performed (memory-access accounting).
        self.probes = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    def __iter__(self) -> Iterator[int]:
        return (k for k in self._slots if k != _EMPTY)

    def _hash(self, key: int) -> int:
        # Fibonacci hashing: cheap, well-distributed for integer ids.
        return ((key * 2654435761) & 0xFFFFFFFF) & self._mask

    def contains(self, key: int) -> bool:
        """Membership test; expected O(1)."""
        if key < 0:
            raise ValueError("keys must be non-negative")
        i = self._hash(key)
        slots = self._slots
        while True:
            self.probes += 1
            cur = slots[i]
            if cur == _EMPTY:
                return False
            if cur == key:
                return True
            i = (i + 1) & self._mask

    def insert(self, key: int) -> bool:
        """Insert ``key``; returns False if it was already present.

        Raises
        ------
        OverflowError
            If the set already holds ``capacity`` keys — the analogue of a
            fixed shared-memory array overflowing on the GPU.
        """
        if key < 0:
            raise ValueError("keys must be non-negative")
        i = self._hash(key)
        slots = self._slots
        while True:
            self.probes += 1
            cur = slots[i]
            if cur == key:
                return False
            if cur == _EMPTY:
                if self._size >= self.capacity:
                    raise OverflowError(
                        f"open-addressing set is full (capacity={self.capacity})"
                    )
                slots[i] = key
                self._size += 1
                return True
            i = (i + 1) & self._mask

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns False if absent.  Backward-shift deletion."""
        if key < 0:
            raise ValueError("keys must be non-negative")
        slots = self._slots
        mask = self._mask
        i = self._hash(key)
        while True:
            self.probes += 1
            cur = slots[i]
            if cur == _EMPTY:
                return False
            if cur == key:
                break
            i = (i + 1) & mask
        # Backward shift: walk the probe chain and move displaced keys back.
        slots[i] = _EMPTY
        j = i
        while True:
            j = (j + 1) & mask
            cur = slots[j]
            if cur == _EMPTY:
                break
            home = self._hash(cur)
            # cur may move into slot i if its home position does not lie
            # strictly between i (exclusive) and j (inclusive) cyclically.
            if self._cyclic_between(i, home, j):
                continue
            slots[i] = cur
            slots[j] = _EMPTY
            i = j
        self._size -= 1
        return True

    @staticmethod
    def _cyclic_between(i: int, home: int, j: int) -> bool:
        """True if ``home`` lies in the cyclic interval (i, j]."""
        if i < j:
            return i < home <= j
        return home > i or home <= j

    def clear(self) -> None:
        """Remove every key, keeping the allocation."""
        for i in range(self._slots_len):
            self._slots[i] = _EMPTY
        self._size = 0

    def memory_bytes(self) -> int:
        """Footprint of the slot array assuming 32-bit keys (as on GPU)."""
        return 4 * self._slots_len
