"""Device-layout data structures: flat preallocated arrays only.

The high-level structures (:mod:`repro.structures.minmax_heap`,
:mod:`repro.structures.hash_table`) use Python lists for clarity.  A CUDA
port cannot: a kernel gets a fixed slab of shared memory and index
arithmetic.  The classes here operate exclusively on preallocated numpy
arrays with the exact layouts the shared-memory budget assumes (8 bytes
per queue slot: float32 distance + int32 id; 4 bytes per hash slot), so
they are line-by-line translatable to device code.  Property tests check
them equivalent to the high-level versions.
"""

from __future__ import annotations

# lint: hot-path

from typing import Optional, Tuple

import numpy as np

__all__ = ["FlatMinMaxHeap", "FlatHashSet"]

Entry = Tuple[float, int]

_EMPTY = -1


def _is_min_level(i: int) -> bool:
    return ((i + 1).bit_length() - 1) % 2 == 0


class FlatMinMaxHeap:
    """Min-max heap over a preallocated ``(capacity, 2)`` float32 slab.

    Column 0 holds distances, column 1 ids (stored as float32, exact for
    ids < 2^24 — the same trick a packed CUDA implementation would use to
    keep one 8-byte slot per entry; swap to a 64-bit dist+id pack for
    larger datasets).
    """

    def __init__(self, capacity: int, storage: Optional[np.ndarray] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        if storage is None:
            storage = np.zeros((capacity, 2), dtype=np.float32)
        if storage.shape != (capacity, 2):
            raise ValueError("storage must have shape (capacity, 2)")
        self._slab = storage
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # -- helpers -------------------------------------------------------------

    def _key(self, i: int) -> Tuple[float, float]:
        return (float(self._slab[i, 0]), float(self._slab[i, 1]))

    def _swap(self, i: int, j: int) -> None:
        self._slab[[i, j]] = self._slab[[j, i]]

    def _entry(self, i: int) -> Entry:
        return (float(self._slab[i, 0]), int(self._slab[i, 1]))

    # -- queries --------------------------------------------------------------

    def peek_min(self) -> Entry:
        if self._size == 0:
            raise IndexError("peek_min from empty heap")
        return self._entry(0)

    def peek_max(self) -> Entry:
        if self._size == 0:
            raise IndexError("peek_max from empty heap")
        if self._size == 1:
            return self._entry(0)
        if self._size == 2:
            return self._entry(1)
        return self._entry(1 if self._key(1) >= self._key(2) else 2)

    def _max_index(self) -> int:
        if self._size == 1:
            return 0
        if self._size == 2:
            return 1
        return 1 if self._key(1) >= self._key(2) else 2

    # -- mutation ----------------------------------------------------------------

    def push(self, dist: float, vertex: int) -> None:
        if self._size >= self.capacity:
            raise OverflowError("flat heap is full")
        i = self._size
        self._slab[i, 0] = dist
        self._slab[i, 1] = vertex
        self._size += 1
        if i == 0:
            return
        parent = (i - 1) >> 1
        if _is_min_level(i):
            if self._key(i) > self._key(parent):
                self._swap(i, parent)
                self._bubble_up_max(parent)
            else:
                self._bubble_up_min(i)
        else:
            if self._key(i) < self._key(parent):
                self._swap(i, parent)
                self._bubble_up_min(parent)
            else:
                self._bubble_up_max(i)

    def pop_min(self) -> Entry:
        if self._size == 0:
            raise IndexError("pop_min from empty heap")
        out = self._entry(0)
        self._size -= 1
        if self._size:
            self._slab[0] = self._slab[self._size]
            self._trickle_down(0)
        return out

    def pop_max(self) -> Entry:
        if self._size == 0:
            raise IndexError("pop_max from empty heap")
        idx = self._max_index()
        out = self._entry(idx)
        self._size -= 1
        if idx < self._size:
            self._slab[idx] = self._slab[self._size]
            self._trickle_down(idx)
        return out

    # -- internals ------------------------------------------------------------------

    def _bubble_up_min(self, i: int) -> None:
        while i >= 3:
            grand = (((i - 1) >> 1) - 1) >> 1
            if grand < 0 or self._key(i) >= self._key(grand):
                return
            self._swap(i, grand)
            i = grand

    def _bubble_up_max(self, i: int) -> None:
        while i >= 3:
            grand = (((i - 1) >> 1) - 1) >> 1
            if grand < 0 or self._key(i) <= self._key(grand):
                return
            self._swap(i, grand)
            i = grand

    def _descendant(self, i: int, want_min: bool) -> int:
        best = -1
        for c in (2 * i + 1, 2 * i + 2):
            if c < self._size:
                if best == -1 or (
                    self._key(c) < self._key(best)
                    if want_min
                    else self._key(c) > self._key(best)
                ):
                    best = c
            for g in (2 * c + 1, 2 * c + 2):
                if g < self._size:
                    if best == -1 or (
                        self._key(g) < self._key(best)
                        if want_min
                        else self._key(g) > self._key(best)
                    ):
                        best = g
        return best

    def _trickle_down(self, i: int) -> None:
        want_min = _is_min_level(i)
        while True:
            m = self._descendant(i, want_min)
            if m == -1:
                return
            if want_min:
                if self._key(m) >= self._key(i):
                    return
            elif self._key(m) <= self._key(i):
                return
            self._swap(m, i)
            if m <= 2 * i + 2:
                return
            parent = (m - 1) >> 1
            if want_min:
                if self._key(m) > self._key(parent):
                    self._swap(m, parent)
            elif self._key(m) < self._key(parent):
                self._swap(m, parent)
            i = m

    def to_sorted_list(self):
        return sorted(self._entry(i) for i in range(self._size))

    def memory_bytes(self) -> int:
        return int(self._slab.nbytes)


class FlatHashSet:
    """Linear-probing hash set over a preallocated int32 slot array.

    The device-code analogue of
    :class:`~repro.structures.hash_table.OpenAddressingSet` — no Python
    containers, backward-shift deletion, power-of-two probing.
    """

    MAX_LOAD = 0.75

    def __init__(self, capacity: int, storage: Optional[np.ndarray] = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        slots = 8
        while slots < int(capacity / self.MAX_LOAD) + 1:
            slots <<= 1
        if storage is None:
            storage = np.full(slots, _EMPTY, dtype=np.int32)
        if storage.shape != (slots,):
            raise ValueError(f"storage must have shape ({slots},)")
        self._slots = storage
        self._mask = slots - 1
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    def _hash(self, key: int) -> int:
        return ((key * 2654435761) & 0xFFFFFFFF) & self._mask

    def contains(self, key: int) -> bool:
        if key < 0:
            raise ValueError("keys must be non-negative")
        i = self._hash(key)
        while True:
            cur = int(self._slots[i])
            if cur == _EMPTY:
                return False
            if cur == key:
                return True
            i = (i + 1) & self._mask

    def insert(self, key: int) -> bool:
        if key < 0:
            raise ValueError("keys must be non-negative")
        i = self._hash(key)
        while True:
            cur = int(self._slots[i])
            if cur == key:
                return False
            if cur == _EMPTY:
                if self._size >= self.capacity:
                    raise OverflowError("flat hash set is full")
                self._slots[i] = key
                self._size += 1
                return True
            i = (i + 1) & self._mask

    def delete(self, key: int) -> bool:
        if key < 0:
            raise ValueError("keys must be non-negative")
        i = self._hash(key)
        while True:
            cur = int(self._slots[i])
            if cur == _EMPTY:
                return False
            if cur == key:
                break
            i = (i + 1) & self._mask
        self._slots[i] = _EMPTY
        j = i
        while True:
            j = (j + 1) & self._mask
            cur = int(self._slots[j])
            if cur == _EMPTY:
                break
            home = self._hash(cur)
            if self._in_cyclic_range(i, home, j):
                continue
            self._slots[i] = cur
            self._slots[j] = _EMPTY
            i = j
        self._size -= 1
        return True

    @staticmethod
    def _in_cyclic_range(i: int, home: int, j: int) -> bool:
        if i < j:
            return i < home <= j
        return home > i or home <= j

    def memory_bytes(self) -> int:
        return int(self._slots.nbytes)
