"""Double-ended bounded priority queue.

SONG bounds the frontier queue ``q`` at ``K`` entries (Observation 1 in the
paper) which requires popping *both* the minimum (next vertex to expand) and
the maximum (eviction when the queue overflows).  The paper implements this
with a symmetric min-max heap [Arvind & Rangan 1999]; we implement the
classic min-max heap of Atkinson et al., which provides the identical
interface and identical O(log n) bounds, using a flat array — the property
that matters for a GPU port.
"""

from __future__ import annotations

# lint: hot-path

from typing import List, Optional, Tuple

__all__ = ["SymmetricMinMaxHeap", "BoundedPriorityQueue"]

Entry = Tuple[float, int]


def _is_min_level(i: int) -> bool:
    """True when index ``i`` (0-based) sits on a min level of the heap."""
    level = (i + 1).bit_length() - 1
    return level % 2 == 0


class SymmetricMinMaxHeap:
    """Min-max heap: O(log n) push, pop-min and pop-max over a flat array.

    Entries are ``(distance, vertex)`` tuples ordered lexicographically so
    ties on distance are broken deterministically by vertex id.
    """

    def __init__(self) -> None:
        self._items: List[Entry] = []

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    # -- queries ------------------------------------------------------------

    def peek_min(self) -> Entry:
        """Smallest entry without removal."""
        if not self._items:
            raise IndexError("peek_min from empty heap")
        return self._items[0]

    def peek_max(self) -> Entry:
        """Largest entry without removal."""
        items = self._items
        if not items:
            raise IndexError("peek_max from empty heap")
        if len(items) == 1:
            return items[0]
        if len(items) == 2:
            return items[1]
        return max(items[1], items[2])

    # -- mutation ------------------------------------------------------------

    def push(self, dist: float, vertex: int) -> None:
        """Insert an entry; O(log n)."""
        items = self._items
        items.append((dist, vertex))
        i = len(items) - 1
        if i == 0:
            return
        parent = (i - 1) >> 1
        if _is_min_level(i):
            if items[i] > items[parent]:
                items[i], items[parent] = items[parent], items[i]
                self._bubble_up_max(parent)
            else:
                self._bubble_up_min(i)
        else:
            if items[i] < items[parent]:
                items[i], items[parent] = items[parent], items[i]
                self._bubble_up_min(parent)
            else:
                self._bubble_up_max(i)

    def pop_min(self) -> Entry:
        """Remove and return the smallest entry; O(log n)."""
        items = self._items
        if not items:
            raise IndexError("pop_min from empty heap")
        top = items[0]
        last = items.pop()
        if items:
            items[0] = last
            self._trickle_down(0)
        return top

    def pop_max(self) -> Entry:
        """Remove and return the largest entry; O(log n)."""
        items = self._items
        if not items:
            raise IndexError("pop_max from empty heap")
        if len(items) <= 2:
            return items.pop()
        idx = 1 if items[1] >= items[2] else 2
        top = items[idx]
        last = items.pop()
        if idx < len(items):
            items[idx] = last
            self._trickle_down(idx)
        return top

    # -- internals -----------------------------------------------------------

    def _bubble_up_min(self, i: int) -> None:
        items = self._items
        while i >= 3:
            grand = (((i - 1) >> 1) - 1) >> 1
            if grand < 0:
                return
            if items[i] < items[grand]:
                items[i], items[grand] = items[grand], items[i]
                i = grand
            else:
                return

    def _bubble_up_max(self, i: int) -> None:
        items = self._items
        while i >= 3:
            grand = (((i - 1) >> 1) - 1) >> 1
            if grand < 0:
                return
            if items[i] > items[grand]:
                items[i], items[grand] = items[grand], items[i]
                i = grand
            else:
                return

    def _smallest_descendant(self, i: int) -> int:
        """Index of the smallest among children and grandchildren of ``i``."""
        items = self._items
        n = len(items)
        best = -1
        for c in (2 * i + 1, 2 * i + 2):
            if c < n and (best == -1 or items[c] < items[best]):
                best = c
            for g in (2 * c + 1, 2 * c + 2):
                if g < n and items[g] < items[best]:
                    best = g
        return best

    def _largest_descendant(self, i: int) -> int:
        items = self._items
        n = len(items)
        best = -1
        for c in (2 * i + 1, 2 * i + 2):
            if c < n and (best == -1 or items[c] > items[best]):
                best = c
            for g in (2 * c + 1, 2 * c + 2):
                if g < n and items[g] > items[best]:
                    best = g
        return best

    def _trickle_down(self, i: int) -> None:
        if _is_min_level(i):
            self._trickle_down_min(i)
        else:
            self._trickle_down_max(i)

    def _trickle_down_min(self, i: int) -> None:
        items = self._items
        while True:
            m = self._smallest_descendant(i)
            if m == -1 or items[m] >= items[i]:
                return
            items[m], items[i] = items[i], items[m]
            if m <= 2 * i + 2:  # m was a direct child
                return
            parent = (m - 1) >> 1
            if items[m] > items[parent]:
                items[m], items[parent] = items[parent], items[m]
            i = m

    def _trickle_down_max(self, i: int) -> None:
        items = self._items
        while True:
            m = self._largest_descendant(i)
            if m == -1 or items[m] <= items[i]:
                return
            items[m], items[i] = items[i], items[m]
            if m <= 2 * i + 2:
                return
            parent = (m - 1) >> 1
            if items[m] < items[parent]:
                items[m], items[parent] = items[parent], items[m]
            i = m

    def to_sorted_list(self) -> List[Entry]:
        """Entries smallest-first; does not mutate the heap."""
        return sorted(self._items)


class BoundedPriorityQueue:
    """A min-max heap capped at ``capacity`` entries.

    This is the *bounded priority queue* optimization: once the queue holds
    ``capacity`` entries, pushing a new one evicts the current maximum, so
    memory stays fixed at ``capacity`` slots.  Per Observation 1 of the
    paper, capacity = K preserves the search result exactly.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._heap = SymmetricMinMaxHeap()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, dist: float, vertex: int) -> Optional[Entry]:
        """Insert; returns the evicted entry if the queue was full.

        When full and the candidate is worse than the current maximum the
        candidate itself is the eviction (it never enters the queue).
        """
        heap = self._heap
        if len(heap) < self.capacity:
            heap.push(dist, vertex)
            return None
        worst = heap.peek_max()
        if (dist, vertex) >= worst:
            return (dist, vertex)
        evicted = heap.pop_max()
        heap.push(dist, vertex)
        return evicted

    def pop_min(self) -> Entry:
        return self._heap.pop_min()

    def pop_max(self) -> Entry:
        return self._heap.pop_max()

    def peek_min(self) -> Entry:
        return self._heap.peek_min()

    def peek_max(self) -> Entry:
        return self._heap.peek_max()

    def to_sorted_list(self) -> List[Entry]:
        return self._heap.to_sorted_list()
