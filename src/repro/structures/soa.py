"""Structure-of-arrays batched priority structures.

The batched search engine (:mod:`repro.core.batched`) advances ``B``
queries in lockstep, so its frontier queue and result pool must operate on
*whole batches* per call instead of one ``(distance, vertex)`` entry at a
time.  Both structures here store a ``(B, width)`` matrix of **packed
keys**: a 64-bit integer whose high 32 bits are the distance (an
order-preserving transform of the float32 bit pattern) and whose low 32
bits are the vertex id.  A single ``np.sort`` row-wise then yields exactly
the lexicographic ``(distance, id)`` order the serial heaps use — the same
trick GPU implementations use to sort candidates with one radix pass.

Empty slots hold :data:`PAD_KEY` (all ones), which compares greater than
any real entry and therefore always sorts to the end of a row.
"""

from __future__ import annotations

# lint: hot-path

from typing import Optional, Tuple

import numpy as np

from repro.annotations import arr, array_kernel, scalar

__all__ = [
    "PAD_KEY",
    "pack_keys",
    "pack_rowid",
    "unpack_rowid",
    "unpack_distances",
    "unpack_ids",
    "BatchedTopK",
    "BatchedFrontier",
]

#: Sentinel for an empty slot; sorts after every real packed key.
PAD_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)

_SIGN32 = np.uint32(0x80000000)
_LOW32 = np.uint64(0xFFFFFFFF)
_SHIFT = np.uint64(32)

_INT64_MAX = 9223372036854775807


@array_kernel(
    params={"n": (1, 2**31)},
    args={
        "rows": arr(lo=0, hi="n-1"),
        "ids": arr(lo=0, hi="n-1"),
        "n": scalar("n"),
    },
    returns=[arr(dtype="int64", lo=0, hi="n*n-1")],
)
def pack_rowid(rows: np.ndarray, ids: np.ndarray, n: int) -> np.ndarray:
    """Pack ``(row, id)`` pairs into the composite key ``row * n + id``.

    The single checked entry point for every composite row/id key in the
    batched builders.  ``ids`` must lie in ``[0, n)`` (so the key decodes
    uniquely) and the largest key must fit ``int64``; both bounds are
    asserted here once — O(1) reductions next to O(m log m) sorts — and
    proven statically by the array verifier for every declared parameter
    range.  ``rows`` may exceed ``n`` (nested packs use a widened row
    coordinate); only the product bound matters.
    """
    rows = np.asarray(rows)
    ids = np.asarray(ids)
    n = int(n)
    if rows.size:
        if int(ids.min()) < 0 or int(ids.max()) >= n:
            raise ValueError("pack_rowid: ids must lie in [0, n)")
        if int(rows.min()) < 0 or int(rows.max()) > (_INT64_MAX - (n - 1)) // n:
            raise OverflowError("pack_rowid: row * n + id exceeds int64")
    return rows * np.int64(n) + ids


@array_kernel(
    params={"n": (1, 2**31)},
    args={"keys": arr(lo=0, hi="n*n-1"), "n": scalar("n")},
    returns=[
        arr(dtype="int64", lo=0, hi="n-1"),
        arr(dtype="int64", lo=0, hi="n-1"),
    ],
)
def unpack_rowid(keys: np.ndarray, n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Invert :func:`pack_rowid`: composite keys back to ``(rows, ids)``.

    ``ids`` lands in ``[0, n)`` by construction of the modulus; the
    ``rows`` bound holds for any key packed by :func:`pack_rowid` with
    row coordinates below ``n`` (the common, non-nested case).
    """
    return np.divmod(keys, np.int64(n))


@array_kernel(
    params={"n": (1, 2**32)},
    args={
        "dists": arr(dtype="float32"),
        "ids": arr(lo=0, hi="n-1"),
    },
    returns=[arr(dtype="uint64")],
)
def pack_keys(dists: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Pack float32 distances and non-negative int ids into sortable uint64.

    The float bits are remapped so that unsigned integer order equals
    numeric float order (sign bit flipped for positives, all bits inverted
    for negatives).  ``-0.0`` is canonicalized to ``+0.0`` first so ties
    between the two zeros break on id, exactly like tuple comparison.
    """
    d = np.ascontiguousarray(dists, dtype=np.float32) + np.float32(0.0)
    bits = d.view(np.uint32)
    mapped = np.where(bits & _SIGN32, ~bits, bits | _SIGN32)
    return (mapped.astype(np.uint64) << _SHIFT) | ids.astype(np.uint64)


@array_kernel(
    args={"keys": arr(dtype="uint64")},
    returns=[arr(dtype="float32")],
)
def unpack_distances(keys: np.ndarray) -> np.ndarray:
    """Recover the float32 distances from packed keys.

    ``PAD_KEY`` slots decode to NaN; callers mask them via sizes/fill
    state before use.
    """
    mapped = (keys >> _SHIFT).astype(np.uint32)
    bits = np.where(mapped & _SIGN32, mapped & np.uint32(0x7FFFFFFF), ~mapped)
    return np.ascontiguousarray(bits).view(np.float32)


@array_kernel(
    args={"keys": arr(dtype="uint64")},
    returns=[arr(dtype="int64", lo=0, hi=2**32 - 1)],
)
def unpack_ids(keys: np.ndarray) -> np.ndarray:
    """Recover the vertex ids from packed keys (``PAD_KEY`` -> 0xFFFFFFFF)."""
    return (keys & _LOW32).astype(np.int64)


class BatchedTopK:
    """``(B, pool)`` result pools, each row sorted ascending by packed key.

    The batched analogue of :class:`repro.structures.heap.TopKMaxHeap`:
    every row always holds the ``pool`` lexicographically-smallest entries
    pushed into it so far.  Because a bounded max-heap's *content* is
    insertion-order independent, one sorted merge per search round is
    exactly equivalent to the serial per-entry ``push_bounded`` sequence.
    """

    def __init__(self, batch: int, pool: int) -> None:
        if batch <= 0 or pool <= 0:
            raise ValueError("batch and pool must be positive")
        self.pool = pool
        self.keys = np.full((batch, pool), PAD_KEY, dtype=np.uint64)

    @property
    def batch(self) -> int:
        return self.keys.shape[0]

    def merge(self, new_keys: np.ndarray) -> np.ndarray:
        """Push a ``(B, m)`` key matrix (PAD_KEY-masked) into every row.

        Returns the ``(B, m)`` overflow tail — entries (real or PAD) that
        fell outside the pool, i.e. the evictions of the serial heap.
        """
        combined = np.concatenate([self.keys, new_keys], axis=1)
        combined.sort(axis=1)
        self.keys = np.ascontiguousarray(combined[:, : self.pool])
        return combined[:, self.pool :]

    def full_and_worst(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row ``(is_full, worst_distance)``.

        ``worst_distance`` is only meaningful where ``is_full`` — non-full
        rows decode the PAD sentinel (NaN), mirroring the serial heap's
        ``+inf`` convention under the guard ``is_full``.
        """
        tail = self.keys[:, self.pool - 1]
        full = tail != PAD_KEY
        return full, unpack_distances(tail)

    def sizes(self) -> np.ndarray:
        """Number of real entries per row."""
        return (self.keys != PAD_KEY).sum(axis=1)


class BatchedFrontier:
    """``(B, width)`` search frontiers, each row sorted ascending.

    The batched analogue of the serial frontier: a
    :class:`~repro.structures.minmax_heap.BoundedPriorityQueue` when
    ``capacity`` is given (Observation 1's bounded queue — merges evict
    the per-row maxima) or an unbounded min-heap when ``capacity`` is
    ``None`` (the row width grows as needed).

    Rows are consumed from the front: a round's pops are the first
    ``n_pop[b]`` entries of row ``b``, which :meth:`merge` then retires
    while inserting the round's accepted candidates — one sorted merge
    replacing the serial pop/push/evict sequence, with identical final
    content per row.
    """

    def __init__(self, batch: int, capacity: Optional[int] = None) -> None:
        if batch <= 0:
            raise ValueError("batch must be positive")
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        width = capacity if capacity is not None else 1
        self.keys = np.full((batch, width), PAD_KEY, dtype=np.uint64)
        self.sizes = np.zeros(batch, dtype=np.int64)

    @property
    def batch(self) -> int:
        return self.keys.shape[0]

    @property
    def width(self) -> int:
        return self.keys.shape[1]

    def seed(self, keys: np.ndarray) -> None:
        """Initialize every row with one entry (the search entry point)."""
        self.keys[:, 0] = keys
        self.sizes[:] = 1

    def window(self, steps: int) -> np.ndarray:
        """The first ``min(steps, width)`` columns (this round's pop window)."""
        return self.keys[:, : min(steps, self.width)]

    def merge(
        self, n_pop: np.ndarray, new_keys: np.ndarray, n_new: np.ndarray
    ) -> np.ndarray:
        """Retire the first ``n_pop[b]`` entries per row and insert candidates.

        Parameters
        ----------
        n_pop:
            ``(B,)`` count of leading entries consumed by this round's pops.
        new_keys:
            ``(B, m)`` packed candidate keys, PAD_KEY where rejected.
        n_new:
            ``(B,)`` count of real keys per row of ``new_keys``.

        Returns the eviction tail: for a bounded frontier, every (real or
        PAD) key pushed beyond ``capacity`` — the serial queue's evictions,
        including candidates "evicted on arrival".  Unbounded frontiers
        never evict and return an empty ``(B, 0)`` array.
        """
        cols = np.arange(self.width, dtype=np.int64)[None, :]
        self.keys[cols < n_pop[:, None]] = PAD_KEY
        combined = np.concatenate([self.keys, new_keys], axis=1)
        combined.sort(axis=1)
        self.sizes = self.sizes - n_pop + n_new
        if self.capacity is not None:
            self.keys = np.ascontiguousarray(combined[:, : self.capacity])
            np.minimum(self.sizes, self.capacity, out=self.sizes)
            return combined[:, self.capacity :]
        width = max(1, int(self.sizes.max()) if len(self.sizes) else 1)
        self.keys = np.ascontiguousarray(combined[:, :width])
        return combined[:, :0]
