"""Plain-text reports shaped like the paper's tables and figures."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.eval.sweep import SweepPoint


def format_curve(name: str, points: List[SweepPoint]) -> str:
    """One method's QPS-recall series, one row per sweep setting."""
    lines = [f"{name}"]
    lines.append(f"  {'param':>8}  {'recall':>8}  {'QPS':>12}")
    for p in sorted(points, key=lambda p: p.param):
        lines.append(f"  {p.param:>8.0f}  {p.recall:>8.4f}  {p.qps:>12.1f}")
    return "\n".join(lines)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: List[Sequence[object]],
) -> str:
    """Fixed-width table with a title rule."""
    widths = [len(str(h)) for h in headers]
    text_rows = []
    for row in rows:
        cells = [_fmt(c) for c in row]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        text_rows.append(cells)
    header_line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    rule = "-" * len(header_line)
    lines = [title, rule, header_line, rule]
    for cells in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    lines.append(rule)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "N/A"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_speedup_table(
    title: str,
    recall_levels: Sequence[float],
    speedups: Dict[str, List[Optional[float]]],
) -> str:
    """Table II-shaped report: rows are datasets, columns recall levels."""
    headers = ["dataset"] + [f"{r:g}" for r in recall_levels]
    rows = []
    for dataset, values in speedups.items():
        rows.append([dataset] + [None if v is None else round(v, 1) for v in values])
    return format_table(title, headers, rows)
