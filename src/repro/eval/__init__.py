"""Evaluation harness: recall, QPS sweeps and paper-shaped reports."""

from repro.eval.recall import batch_recall, recall_at_k
from repro.eval.serving import (
    SERVING_POLICIES,
    format_serving_table,
    serving_policy_config,
    sweep_serving,
)
from repro.eval.sweep import (
    SweepPoint,
    qps_at_recall,
    sweep_batched_song,
    sweep_build_engines,
    sweep_gpu_song,
    sweep_cpu_song,
    sweep_hnsw,
    sweep_ivfpq,
)
from repro.eval.report import format_curve, format_table
from repro.eval.stats import bootstrap_ci, paired_bootstrap_pvalue, per_query_recall

__all__ = [
    "SERVING_POLICIES",
    "bootstrap_ci",
    "paired_bootstrap_pvalue",
    "per_query_recall",
    "recall_at_k",
    "batch_recall",
    "SweepPoint",
    "format_serving_table",
    "serving_policy_config",
    "sweep_batched_song",
    "sweep_build_engines",
    "sweep_gpu_song",
    "sweep_cpu_song",
    "sweep_hnsw",
    "sweep_ivfpq",
    "sweep_serving",
    "qps_at_recall",
    "format_curve",
    "format_table",
]
