"""Terminal plots for QPS-recall curves.

The paper's figures are log-scale QPS vs recall scatter plots; this
module renders the same shape as ASCII so reports and examples can show
curves without a plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.eval.sweep import SweepPoint

#: Glyphs assigned to series, in order.
SERIES_GLYPHS = "o*x+#@%&"


def _log10(value: float) -> float:
    return math.log10(max(value, 1e-12))


def ascii_qps_recall(
    series: Dict[str, List[SweepPoint]],
    width: int = 68,
    height: int = 18,
    title: str = "",
) -> str:
    """Render QPS-recall curves as an ASCII scatter plot.

    Parameters
    ----------
    series:
        Mapping of series name → sweep points.  Up to 8 series.
    width / height:
        Plot area size in characters.
    title:
        Optional heading line.

    Returns the multi-line plot; y is log10(QPS), x is recall in [0, 1].
    """
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(SERIES_GLYPHS):
        raise ValueError(f"at most {len(SERIES_GLYPHS)} series supported")
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        raise ValueError("series contain no points")

    y_vals = [_log10(p.qps) for p in all_points]
    y_min = math.floor(min(y_vals))
    y_max = math.ceil(max(y_vals))
    if y_max == y_min:
        y_max = y_min + 1

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, pts) in zip(SERIES_GLYPHS, series.items()):
        for p in pts:
            x = min(width - 1, max(0, int(round(p.recall * (width - 1)))))
            frac = (_log10(p.qps) - y_min) / (y_max - y_min)
            y = min(height - 1, max(0, int(round(frac * (height - 1)))))
            grid[height - 1 - y][x] = glyph

    lines = []
    if title:
        lines.append(title)
    for row_idx, row in enumerate(grid):
        frac = (height - 1 - row_idx) / (height - 1)
        y_val = y_min + frac * (y_max - y_min)
        label = f"1e{y_val:4.1f} |" if row_idx % 3 == 0 else " " * 7 + "|"
        lines.append(label + "".join(row))
    lines.append(" " * 7 + "+" + "-" * width)
    axis = [" "] * (width + 8)
    for tick in (0.0, 0.25, 0.5, 0.75, 1.0):
        pos = 8 + int(round(tick * (width - 1)))
        text = f"{tick:g}"
        for i, ch in enumerate(text):
            if pos + i < len(axis):
                axis[pos + i] = ch
    lines.append("".join(axis))
    lines.append(" " * 7 + "recall".center(width))
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(SERIES_GLYPHS, series)
    )
    lines.append("  " + legend)
    return "\n".join(lines)
