"""Recall measurement (the paper's retrieval-quality metric).

``Recall(A) = |A ∩ B| / |B|`` for returned set ``A`` and true top-K ``B``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


def recall_at_k(returned_ids: Iterable[int], true_ids: Sequence[int]) -> float:
    """Recall of one query's result against the true top-K ids."""
    truth = set(int(i) for i in true_ids)
    if not truth:
        raise ValueError("ground truth is empty")
    hits = sum(1 for i in returned_ids if int(i) in truth)
    return hits / len(truth)


def batch_recall(
    results: List[List[Tuple[float, int]]], ground_truth: np.ndarray
) -> float:
    """Average recall over a batch.

    Parameters
    ----------
    results:
        Per query, ``(distance, id)`` pairs as returned by the searchers.
    ground_truth:
        ``(q, k)`` exact ids.
    """
    if len(results) != len(ground_truth):
        raise ValueError("results/ground-truth length mismatch")
    total = 0.0
    for res, truth in zip(results, ground_truth):
        total += recall_at_k((v for _, v in res), truth)
    return total / len(results)
