"""Serving-layer evaluation: QPS vs latency vs recall **under an SLO**.

Offline sweeps (:mod:`repro.eval.sweep`) measure the engine in isolation:
every batch is full-size and nothing queues.  A serving system behaves
differently — latency is dominated by queueing once offered load nears
capacity, and the interesting trade-off is *recall under load*: how much
quality the SLO-aware degradation ladder gives up to keep the p99 inside
the target.  :func:`sweep_serving` measures exactly that, by running the
same seeded open-loop Poisson workload against a server per offered-load
point and policy, on the deterministic virtual clock.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import SearchConfig
from repro.serve.admission import AdmissionConfig
from repro.serve.batcher import BatchPolicy
from repro.serve.loadgen import LoadtestReport, run_loadtest
from repro.serve.server import ServerConfig, build_server

__all__ = ["SERVING_POLICIES", "serving_policy_config", "sweep_serving", "format_serving_table"]

#: Named serving policies the sweep compares.
SERVING_POLICIES = ("fixed", "adaptive")


def serving_policy_config(
    policy: str,
    base: SearchConfig,
    slo_p99_s: float,
    max_queue: int = 256,
    batch_size: int = 8,
    max_batch: int = 64,
) -> ServerConfig:
    """The :class:`ServerConfig` a named policy stands for.

    ``"fixed"`` is the baseline: constant batch size, tier-0 quality,
    shed only when the bounded queue fills.  ``"adaptive"`` is the full
    controller: SLO-adaptive batch sizing plus the degradation ladder.
    """
    if policy not in SERVING_POLICIES:
        raise ValueError(
            f"unknown serving policy {policy!r}; expected one of {SERVING_POLICIES}"
        )
    if policy == "fixed":
        return ServerConfig(
            base=base,
            admission=AdmissionConfig(
                policy="reject", slo_p99_s=slo_p99_s, max_queue=max_queue
            ),
            batch=BatchPolicy(
                mode="fixed", batch_size=batch_size, max_batch=max_batch
            ),
        )
    return ServerConfig(
        base=base,
        admission=AdmissionConfig(
            policy="degrade", slo_p99_s=slo_p99_s, max_queue=max_queue
        ),
        batch=BatchPolicy(
            mode="adaptive", batch_size=batch_size, max_batch=max_batch
        ),
    )


def sweep_serving(
    graph,
    data: np.ndarray,
    queries: np.ndarray,
    rates: Sequence[float],
    base: Optional[SearchConfig] = None,
    slo_p99_s: float = 0.005,
    num_requests: int = 400,
    seed: int = 0,
    ground_truth: Optional[np.ndarray] = None,
    num_replicas: int = 1,
    device: str = "v100",
    policies: Sequence[str] = SERVING_POLICIES,
    max_queue: int = 256,
    batch_size: int = 8,
    max_batch: int = 64,
    streams: int = 1,
    tier=None,
    prefetch: bool = True,
) -> Dict[str, List[LoadtestReport]]:
    """Loadtest every ``(policy, offered rate)`` pair; return report curves.

    Each point runs on a fresh server and a fresh virtual-time loop with
    the same arrival seed, so curves are directly comparable and the
    whole sweep is deterministic.  ``tier`` (a
    :class:`~repro.tiered.TieredConfig`) routes every replica through
    the out-of-core tier; ``prefetch`` toggles staged/overlapped page
    fetches vs serial demand fetches for that tier.
    """
    base = base or SearchConfig(k=10, queue_size=64)
    series: Dict[str, List[LoadtestReport]] = {}
    for policy in policies:
        cfg = serving_policy_config(
            policy,
            base,
            slo_p99_s,
            max_queue=max_queue,
            batch_size=batch_size,
            max_batch=max_batch,
        )
        points = []
        for rate in rates:
            report = run_loadtest(
                lambda: build_server(
                    graph,
                    data,
                    cfg,
                    num_replicas=num_replicas,
                    device=device,
                    streams=streams,
                    tier=tier,
                    prefetch=prefetch,
                ),
                queries,
                rate_qps=float(rate),
                num_requests=num_requests,
                seed=seed,
                ground_truth=ground_truth,
            )
            points.append(report)
        series[policy] = points
    return series


def format_serving_table(series: Dict[str, List[LoadtestReport]]) -> str:
    """Render sweep results as an aligned text table."""
    lines = [
        f"{'policy':<10} {'offered':>10} {'achieved':>10} {'p50 ms':>8} "
        f"{'p99 ms':>8} {'SLO':>4} {'shed':>6} {'degr':>6} {'recall':>7}"
    ]
    for policy, points in series.items():
        for p in points:
            recall = "-" if p.recall is None else f"{p.recall:.4f}"
            lines.append(
                f"{policy:<10} {p.offered_qps:>10,.0f} {p.achieved_qps:>10,.0f} "
                f"{1e3 * p.p50_latency_s:>8.3f} {1e3 * p.p99_latency_s:>8.3f} "
                f"{'ok' if p.slo_met else 'MISS':>4} {p.shed_rate:>6.1%} "
                f"{p.degraded_fraction:>6.1%} {recall:>7}"
            )
    return "\n".join(lines)
