"""Statistical rigor for recall measurements.

The paper reports average recall over 10k queries; at laptop scale (100
queries) sampling noise matters.  This module provides per-query recall
vectors, bootstrap confidence intervals, and a paired comparison test so
curve differences can be checked for significance before being read as
reproduction evidence.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.eval.recall import recall_at_k


def per_query_recall(
    results: List[List[Tuple[float, int]]], ground_truth: np.ndarray
) -> np.ndarray:
    """Recall of each query as a float vector."""
    if len(results) != len(ground_truth):
        raise ValueError("results/ground-truth length mismatch")
    return np.array(
        [
            recall_at_k((v for _, v in res), truth)
            for res, truth in zip(results, ground_truth)
        ]
    )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Bootstrap mean with a percentile confidence interval.

    Returns ``(mean, low, high)``.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("values must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = len(values)
    idx = rng.integers(0, n, size=(num_resamples, n))
    means = values[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(values.mean()), float(low), float(high)


def paired_bootstrap_pvalue(
    a: Sequence[float],
    b: Sequence[float],
    num_resamples: int = 2000,
    seed: int = 0,
) -> float:
    """One-sided paired bootstrap: P(mean(a) ≤ mean(b)) under resampling.

    Small values mean method A's per-query recall reliably exceeds B's.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("a and b must be non-empty and same length")
    diff = a - b
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(diff), size=(num_resamples, len(diff)))
    means = diff[idx].mean(axis=1)
    return float((means <= 0).mean())
