"""Parameter sweeps producing QPS-vs-recall curves.

Every figure in the paper's evaluation is a set of such curves: a search
parameter (SONG/HNSW queue size, Faiss ``nprobe``) is swept over a grid,
and each setting yields one ``(recall, qps)`` point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import SearchConfig
from repro.core.cpu_song import CpuSongIndex
from repro.core.gpu_kernel import GpuSongIndex
from repro.core.machine import DEFAULT_CPU, CpuModel
from repro.core.song import SongSearcher
from repro.baselines.ivfpq import IVFPQIndex
from repro.data.datasets import Dataset
from repro.distances import OpCounter
from repro.eval.recall import batch_recall
from repro.graphs.hnsw import HNSWIndex


@dataclass
class SweepPoint:
    """One setting of the sweep: parameter value, recall, throughput."""

    param: float
    recall: float
    qps: float
    extra: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, float]:
        row = {"param": self.param, "recall": self.recall, "qps": self.qps}
        row.update(self.extra)
        return row


def _effective_queue_sizes(queue_sizes: Sequence[int], k: int) -> List[int]:
    """Clamp the grid at ``k`` and drop the resulting duplicates."""
    seen = []
    for qs in queue_sizes:
        eff = max(qs, k)
        if eff not in seen:
            seen.append(eff)
    return seen


def sweep_gpu_song(
    dataset: Dataset,
    index: GpuSongIndex,
    queue_sizes: Sequence[int],
    k: int = 10,
    config: Optional[SearchConfig] = None,
    distance_fn=None,
    ground_truth: Optional[np.ndarray] = None,
) -> List[SweepPoint]:
    """SONG on the simulated GPU across frontier queue sizes."""
    base = config or SearchConfig(k=k, queue_size=max(k, min(queue_sizes)))
    gt = ground_truth if ground_truth is not None else dataset.ground_truth(k)
    points = []
    for qs in _effective_queue_sizes(queue_sizes, k):
        cfg = base.with_options(k=k, queue_size=qs)
        results, timing = index.search_batch(
            dataset.queries, cfg, distance_fn=distance_fn
        )
        points.append(
            SweepPoint(
                param=qs,
                recall=batch_recall(results, gt),
                qps=timing.qps(dataset.num_queries),
                extra={
                    "kernel_seconds": timing.kernel_seconds,
                    "occupancy": timing.occupancy_warps_per_sm,
                },
            )
        )
    return points


def sweep_cpu_song(
    dataset: Dataset,
    index: CpuSongIndex,
    queue_sizes: Sequence[int],
    k: int = 10,
    config: Optional[SearchConfig] = None,
) -> List[SweepPoint]:
    """SONG's engineered CPU variant across queue sizes (Fig. 15)."""
    base = config or SearchConfig(k=k, queue_size=max(k, min(queue_sizes)))
    gt = dataset.ground_truth(k)
    points = []
    for qs in _effective_queue_sizes(queue_sizes, k):
        cfg = base.with_options(k=k, queue_size=qs)
        batch = index.search_batch(dataset.queries, cfg)
        points.append(
            SweepPoint(
                param=qs,
                recall=batch_recall(batch.results, gt),
                qps=batch.qps(),
            )
        )
    return points


def sweep_batched_song(
    dataset: Dataset,
    searcher: SongSearcher,
    queue_sizes: Sequence[int],
    k: int = 10,
    config: Optional[SearchConfig] = None,
    engine: str = "batched",
    ground_truth: Optional[np.ndarray] = None,
) -> List[SweepPoint]:
    """SONG's vectorized lockstep engine across queue sizes (wall clock).

    Unlike :func:`sweep_gpu_song` (modelled GPU time) this measures *real*
    wall-clock throughput of :meth:`SongSearcher.search_batch`, so serial
    and batched engines are directly comparable; pass ``engine="serial"``
    for the baseline curve.
    """
    base = config or SearchConfig(k=k, queue_size=max(k, min(queue_sizes)))
    gt = ground_truth if ground_truth is not None else dataset.ground_truth(k)
    points = []
    for qs in _effective_queue_sizes(queue_sizes, k):
        cfg = base.with_options(k=k, queue_size=qs)
        start = time.perf_counter()
        results = searcher.search_batch(dataset.queries, cfg, engine=engine)
        seconds = time.perf_counter() - start
        points.append(
            SweepPoint(
                param=qs,
                recall=batch_recall(results, gt),
                qps=dataset.num_queries / seconds if seconds > 0 else float("inf"),
                extra={"wall_seconds": seconds},
            )
        )
    return points


def sweep_hnsw(
    dataset: Dataset,
    index: HNSWIndex,
    efs: Sequence[int],
    k: int = 10,
    model: CpuModel = DEFAULT_CPU,
) -> List[SweepPoint]:
    """Single-thread HNSW across ``ef``; time from the CPU work model."""
    gt = dataset.ground_truth(k)
    dim = dataset.dim
    points = []
    for ef in _effective_queue_sizes(efs, k):
        counter = OpCounter()
        results = [
            index.search(q, k, ef=ef, counter=counter)
            for q in dataset.queries
        ]
        seconds = model.seconds(counter, bytes_read=4 * dim * counter.vector_reads)
        points.append(
            SweepPoint(
                param=ef,
                recall=batch_recall(results, gt),
                qps=dataset.num_queries / seconds if seconds > 0 else float("inf"),
            )
        )
    return points


def sweep_ivfpq(
    dataset: Dataset,
    index: IVFPQIndex,
    nprobes: Sequence[int],
    k: int = 10,
    device: str = "v100",
) -> List[SweepPoint]:
    """IVFPQ (Faiss stand-in) on the simulated GPU across ``nprobe``."""
    gt = dataset.ground_truth(k)
    points = []
    for nprobe in nprobes:
        results, timing = index.gpu_search_batch(
            dataset.queries, k, nprobe=nprobe, device=device
        )
        points.append(
            SweepPoint(
                param=nprobe,
                recall=batch_recall(results, gt),
                qps=timing.qps(dataset.num_queries),
            )
        )
    return points


def sweep_build_engines(
    data: np.ndarray,
    k: int = 10,
    engines: Sequence[str] = ("serial", "batched"),
    metric: str = "l2",
    seed: int = 0,
    exact: Optional[np.ndarray] = None,
    graph_type: Optional[str] = None,
) -> Dict[str, SweepPoint]:
    """Build-side sweep: graph construction under each engine.

    For every engine, builds the index over ``data`` and reports one
    point whose ``qps`` is build throughput (points per second) and whose
    ``recall`` is graph recall against the exact kNN table (computed by
    brute force when ``exact`` is omitted).  ``graph_type=None``
    (default) sweeps the raw NN-descent kNN table; any name from
    :data:`~repro.core.config.GRAPH_TYPES` sweeps that builder through
    :func:`repro.graphs.build_graph` at ``degree=k`` instead.  Each
    point's ``extra`` carries the build time plus degree-distribution
    and reverse-edge-coverage summaries of the resulting graph.
    """
    from repro.graphs import FixedDegreeGraph, build_graph
    from repro.graphs.bruteforce_knn import knn_neighbors
    from repro.graphs.nn_descent import graph_recall, nn_descent
    from repro.graphs.stats import degree_distribution, reverse_edge_coverage
    from repro.graphs.storage import PAD

    if exact is None:
        exact = knn_neighbors(data, k, metric)
    points: Dict[str, SweepPoint] = {}
    for engine in engines:
        start = time.perf_counter()
        if graph_type is None:
            table = nn_descent(
                data, k, metric=metric, seed=seed, build_engine=engine
            )
            seconds = time.perf_counter() - start
            graph = FixedDegreeGraph.from_neighbor_array(
                table.astype(np.int64), validate=False
            )
            approx = table.astype(np.int64)
        else:
            graph = build_graph(
                data,
                graph_type,
                degree=k,
                metric=metric,
                build_engine=engine,
                seed=seed,
            )
            seconds = time.perf_counter() - start
            approx = graph.adjacency_array.astype(np.int64)[:, :k]
            # padded slots count as misses: replace PAD with the row's
            # own id, which the exact table never contains
            rows = np.arange(len(approx), dtype=np.int64)[:, None]
            approx = np.where(approx == PAD, rows, approx)
        degrees = degree_distribution(graph)
        points[engine] = SweepPoint(
            param=len(data),
            recall=graph_recall(approx, exact),
            qps=len(data) / seconds if seconds > 0 else float("inf"),
            extra={
                "build_seconds": seconds,
                "degree_mean": degrees["mean"],
                "degree_p50": degrees["p50"],
                "degree_saturated": degrees["saturated"],
                "reverse_edge_coverage": reverse_edge_coverage(graph),
            },
        )
    return points


def qps_at_recall(points: List[SweepPoint], target_recall: float) -> Optional[float]:
    """QPS a method achieves at a recall level (log-linear interpolation).

    Returns ``None`` when the method never reaches ``target_recall`` —
    the paper's "N/A" entries in Table II.
    """
    usable = sorted(points, key=lambda p: p.recall)
    if not usable or usable[-1].recall < target_recall:
        return None
    prev = None
    for point in usable:
        if point.recall >= target_recall:
            if prev is None or point.recall == prev.recall:
                return point.qps
            frac = (target_recall - prev.recall) / (point.recall - prev.recall)
            log_qps = (1 - frac) * np.log(max(prev.qps, 1e-12)) + frac * np.log(
                max(point.qps, 1e-12)
            )
            return float(np.exp(log_qps))
        prev = point
    return None
