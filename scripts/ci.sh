#!/usr/bin/env bash
# Minimal CI gate: the tier-1 test suite plus the smoke benchmarks —
# batched search engine (parity + speedup >= 1x at B=64) and batched
# graph construction (speedup + graph-recall gap gates).  Each smoke
# runs in well under 60 s.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

python -m pytest -x -q
python -m benchmarks.bench_batched_engine --smoke
python -m benchmarks.bench_build_speed --smoke
