#!/usr/bin/env bash
# Minimal CI gate: the tier-1 test suite plus the batched-engine smoke
# benchmark (parity + speedup >= 1x at B=64, runs in well under 60 s).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

python -m pytest -x -q
python -m benchmarks.bench_batched_engine --smoke
