#!/usr/bin/env bash
# Minimal CI gate: static analysis, the tier-1 test suite, and the smoke
# benchmarks — batched search engine (parity + speedup >= 1x at B=64) and
# batched graph construction (speedup + graph-recall gap gates).  Each
# smoke runs in well under 60 s.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

# Kernel sanitizer + hot-path lint (warnings fail too: --strict).
python -m repro.analysis --strict

# ruff is optional tooling (config in pyproject.toml); gate on presence
# so the image does not need it installed.
if command -v ruff >/dev/null 2>&1; then
    ruff check .
else
    echo "ci: ruff not installed, skipping ruff check"
fi

python -m pytest -x -q
python -m benchmarks.bench_batched_engine --smoke
python -m benchmarks.bench_build_speed --smoke
