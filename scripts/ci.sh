#!/usr/bin/env bash
# Minimal CI gate: static analysis, the tier-1 test suite, and the smoke
# benchmarks — batched search engine (parity + speedup >= 1x at B=64),
# batched graph construction (speedup + graph-recall gap gates), and the
# serving layer (fixed batching misses the p99 SLO at overload while the
# SLO-aware policy holds it; the multi-stream sweep must scale QPS
# within its pinned band and keep recall bit-identical), and the
# out-of-core tier (a 10x-over-budget dataset served under SLO, with
# prefetch beating serial demand fetches inside a pinned band).  Each
# smoke runs in well under 60 s.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

# Kernel sanitizer + hot-path lint (warnings fail too: --strict).
python -m repro.analysis --strict

# Static verifier: abstract interpretation of every registered kernel
# plus the Theorem 1-3 search-invariant proofs.
python -m repro.analysis --verify --strict

# Array-program verifier: shape/dtype/overflow abstract interpretation
# of every @array_kernel host kernel + the nondeterminism sweep, against
# the committed findings baseline (currently empty).  The text report
# prints per-engine wall times and any engine over 60 s warns on stderr.
python -m repro.analysis --engines arrays --strict \
    --baseline scripts/analysis_baseline.json

# Async-concurrency analyzer over the serving layer: atomicity across
# await, lock-order inversion, virtual-time determinism, task hygiene
# (DESIGN.md Sec. 15), against the same consolidated baseline.
python -m repro.analysis --engines aio --strict \
    --baseline scripts/analysis_baseline.json

# Negative control: the verify gate must FAIL on the known-bad fixture
# kernels and the known-bad stream program (missing event deps), or the
# proof obligations are not actually being checked.
if python -m repro.analysis --verify-only --strict --include-known-bad \
        >/dev/null 2>&1; then
    echo "ci: verifier accepted the known-bad kernels — gate is broken" >&2
    exit 1
fi

# Same negative control for the array verifier: the known-bad array
# fixtures (packed-key overflow, aliased scatter, unstable tie-break,
# broadcast mismatch, OOB gather) must each fail the strict gate.
if python -m repro.analysis --arrays-only --strict --include-known-bad \
        >/dev/null 2>&1; then
    echo "ci: array verifier accepted the known-bad kernels — gate is broken" >&2
    exit 1
fi

# Same negative control for the aio engine: the known-bad coroutine
# fixtures (lost update across await, ABBA lock cycle, wall-clock read,
# rw writer-upgrade, dropped task, ...) must each fail the strict gate.
if python -m repro.analysis --aio-only --strict --include-known-bad \
        >/dev/null 2>&1; then
    echo "ci: aio analyzer accepted the known-bad coroutines — gate is broken" >&2
    exit 1
fi

# ruff is a pinned dev dependency (pyproject.toml extra `dev`); the gate
# is unconditional — a missing install fails CI instead of skipping.
if command -v ruff >/dev/null 2>&1; then
    ruff check .
else
    python -m ruff check .
fi

python -m pytest -x -q
python -m benchmarks.bench_batched_engine --smoke
python -m benchmarks.bench_build_speed --smoke
python -m benchmarks.bench_serving --smoke
python -m benchmarks.bench_outofcore --smoke

# The build, serving and out-of-core smokes must have produced every
# gated artifact (bench_build_speed writes BENCH_build.json and the
# three-way serial-NSG / batched-NSG / CAGRA race in BENCH_cagra.json;
# bench_outofcore pins the prefetch-vs-serial overlap band in
# BENCH_outofcore.json).
for artifact in BENCH_build.json BENCH_cagra.json \
        BENCH_serve.json BENCH_streams.json BENCH_outofcore.json; do
    if [ ! -f "benchmarks/results/$artifact" ]; then
        echo "ci: missing benchmark artifact $artifact" >&2
        exit 1
    fi
done
