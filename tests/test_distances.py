"""Distance metric unit + property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.distances import (
    CountedDistance,
    OpCounter,
    batch_distance,
    get_metric,
    pairwise_distance,
    single_distance,
)

finite_floats = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False, width=32
)


def vec(dim):
    return arrays(np.float64, (dim,), elements=finite_floats)


class TestSingle:
    def test_l2_known_value(self):
        u = np.array([0.0, 0.0])
        v = np.array([3.0, 4.0])
        assert single_distance(u, v, "l2") == pytest.approx(25.0)

    def test_ip_is_negated_dot(self):
        u = np.array([1.0, 2.0])
        v = np.array([3.0, -1.0])
        assert single_distance(u, v, "ip") == pytest.approx(-1.0)

    def test_cosine_parallel_vectors(self):
        u = np.array([1.0, 1.0])
        assert single_distance(u, 3 * u, "cosine") == pytest.approx(-1.0)

    def test_cosine_orthogonal(self):
        assert single_distance(
            np.array([1.0, 0.0]), np.array([0.0, 5.0]), "cosine"
        ) == pytest.approx(0.0)

    def test_cosine_zero_vector_is_zero(self):
        assert single_distance(np.zeros(3), np.ones(3), "cosine") == 0.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            get_metric("manhattan")


class TestBatchConsistency:
    @pytest.mark.parametrize("metric", ["l2", "ip", "cosine"])
    def test_batch_matches_single(self, metric, rng):
        q = rng.normal(size=8)
        pts = rng.normal(size=(20, 8))
        batch = batch_distance(q, pts, metric)
        for i in range(20):
            assert batch[i] == pytest.approx(
                single_distance(q, pts[i], metric), rel=1e-6, abs=1e-9
            )

    @pytest.mark.parametrize("metric", ["l2", "ip", "cosine"])
    def test_pairwise_matches_batch(self, metric, rng):
        qs = rng.normal(size=(5, 8))
        pts = rng.normal(size=(12, 8))
        pw = pairwise_distance(qs, pts, metric)
        for i in range(5):
            np.testing.assert_allclose(
                pw[i], batch_distance(qs[i], pts, metric), rtol=1e-6, atol=1e-8
            )

    def test_batch_rejects_1d_points(self):
        with pytest.raises(ValueError, match="2-d"):
            batch_distance(np.ones(3), np.ones(3))


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(u=vec(6), v=vec(6))
    def test_l2_symmetry(self, u, v):
        assert single_distance(u, v) == pytest.approx(single_distance(v, u))

    @settings(max_examples=50, deadline=None)
    @given(u=vec(6))
    def test_l2_identity(self, u):
        assert single_distance(u, u) == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(u=vec(6), v=vec(6))
    def test_l2_nonnegative(self, u, v):
        assert single_distance(u, v) >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(u=vec(4), v=vec(4))
    def test_cosine_bounded(self, u, v):
        d = single_distance(u, v, "cosine")
        assert -1.0 - 1e-9 <= d <= 1.0 + 1e-9


class TestMetricObject:
    def test_equality_and_hash(self):
        assert get_metric("l2") == get_metric("l2")
        assert get_metric("l2") is get_metric("l2")  # cached
        assert get_metric("l2") != get_metric("ip")
        assert hash(get_metric("ip")) == hash(get_metric("ip"))

    def test_flops_scale_with_dim(self):
        m = get_metric("l2")
        assert m.flops_per_distance(100) == 2 * m.flops_per_distance(50)

    def test_get_metric_passthrough(self):
        m = get_metric("cosine")
        assert get_metric(m) is m


class TestCountedDistance:
    def test_counts_single_calls(self, rng):
        counted = CountedDistance(get_metric("l2"))
        u, v = rng.normal(size=4), rng.normal(size=4)
        counted.single(u, v)
        counted.single(u, v)
        assert counted.counter.distance_calls == 2
        assert counted.counter.distance_flops == 2 * 12
        assert counted.counter.vector_reads == 2

    def test_counts_batch(self, rng):
        counted = CountedDistance(get_metric("ip"))
        counted.batch(rng.normal(size=4), rng.normal(size=(7, 4)))
        assert counted.counter.distance_calls == 7
        assert counted.counter.distance_flops == 7 * 8

    def test_counter_reset_and_merge(self):
        a, b = OpCounter(), OpCounter()
        a.distance_calls = 3
        b.distance_calls = 4
        b.hops = 2
        a.merge(b)
        assert a.distance_calls == 7
        assert a.hops == 2
        a.reset()
        assert a.distance_calls == 0
        assert a.snapshot()["hops"] == 0
