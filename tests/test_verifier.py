"""The static verifier: registry proofs, known-bad refutations, and the
individual checker passes (bounds, termination, divergence, init)."""

from dataclasses import replace

import pytest

from repro.analysis.registry import iter_kernel_specs, verify_kernel
from repro.analysis.verifier.absint import verify_program
from repro.analysis.verifier.domain import AbstractValue
from repro.analysis.verifier.fixtures import iter_known_bad_specs
from repro.simt.isa import (
    Binary,
    Cmp,
    EndIf,
    EndWhile,
    If,
    LaneId,
    Ldg,
    Mov,
    ShflDown,
    Sts,
    Unary,
    While,
)
from repro.simt.simulator import WarpSimulator

REGISTRY = list(iter_kernel_specs())
KNOWN_BAD = list(iter_known_bad_specs())


def rules(report):
    return {f.rule for f in report.findings}


@pytest.fixture
def forbid_execution(monkeypatch):
    """Any attempt to actually run a simulator fails the test."""

    def boom(self):
        raise AssertionError("static verification must not execute the kernel")

    monkeypatch.setattr(WarpSimulator, "run", boom)


class TestRegistryKernelsProve:
    @pytest.mark.parametrize("spec", REGISTRY, ids=lambda s: s.name)
    def test_kernel_verifies_clean(self, spec, forbid_execution):
        report = verify_kernel(spec)
        assert report.ok, [f.format() for f in report.findings]
        assert report.proven  # at least one discharged obligation

    @pytest.mark.parametrize("spec", REGISTRY, ids=lambda s: s.name)
    def test_every_loop_has_a_finite_trip_bound(self, spec, forbid_execution):
        report = verify_kernel(spec)
        for pc, trips in report.loop_trips.items():
            assert trips is not None, f"{spec.name}: loop at pc={pc} unbounded"


class TestKnownBadKernelsRefute:
    """ISSUE acceptance: the broken kernels are flagged *statically*."""

    def _by_name(self, name):
        return next(s for s in KNOWN_BAD if s.name == name)

    def test_unguarded_heap_push_oob(self, forbid_execution):
        report = verify_kernel(self._by_name("bad_heap_push_unguarded"))
        assert "static-oob-shared" in rules(report)
        # The counterexample interval names the offending address range.
        msg = next(f for f in report.findings if f.rule == "static-oob-shared").message
        assert "[16, 32]" in msg and "budget" in msg

    def test_oob_via_loop_index(self, forbid_execution):
        report = verify_kernel(self._by_name("bad_oob_unbounded_index"))
        assert "static-oob-shared" in rules(report)

    def test_shuffle_under_divergent_mask(self, forbid_execution):
        report = verify_kernel(self._by_name("bad_divergent_shuffle"))
        assert rules(report) == {"static-divergent-shuffle"}

    @pytest.mark.parametrize("spec", KNOWN_BAD, ids=lambda s: s.name)
    def test_all_fixtures_fail(self, spec, forbid_execution):
        assert not verify_kernel(spec).ok


class TestTermination:
    def test_additive_counter_terminates_with_trip_bound(self):
        prog = [
            LaneId("i"),
            Mov("limit", 64.0),
            Cmp("lt", "more", "i", "limit"),
            While("more"),
            Binary("add", "i", "i", 32.0),
            Cmp("lt", "more", "i", "limit"),
            EndWhile(),
        ]
        report = verify_program(prog, shared_words=0, global_words=0)
        assert "static-unbounded-loop" not in rules(report)
        (trips,) = report.loop_trips.values()
        assert trips is not None and trips <= 4

    def test_constant_register_step_is_recognised(self):
        prog = [
            Mov("i", 0.0),
            Mov("n", 10.0),
            Mov("one", 1.0),
            Cmp("lt", "more", "i", "n"),
            While("more"),
            Binary("add", "i", "i", "one"),
            Cmp("lt", "more", "i", "n"),
            EndWhile(),
        ]
        report = verify_program(prog, shared_words=0, global_words=0)
        assert "static-unbounded-loop" not in rules(report)

    def test_halving_loop_terminates(self):
        """The heap-sift parent walk: i = floor((i - 1) / 2)."""
        prog = [
            Mov("i", 15.0),
            Mov("zero", 0.0),
            Cmp("gt", "loop", "i", "zero"),
            While("loop"),
            Binary("sub", "pm1", "i", 1.0),
            Binary("mul", "half", "pm1", 0.5),
            Unary("floor", "i", "half"),
            Cmp("gt", "loop", "i", "zero"),
            EndWhile(),
        ]
        report = verify_program(prog, shared_words=0, global_words=0)
        assert "static-unbounded-loop" not in rules(report)

    def test_no_progress_loop_is_flagged(self):
        prog = [
            Mov("i", 0.0),
            Mov("n", 10.0),
            Cmp("lt", "more", "i", "n"),
            While("more"),
            Binary("add", "j", "i", 1.0),  # steps the wrong register
            Cmp("lt", "more", "i", "n"),
            EndWhile(),
        ]
        report = verify_program(prog, shared_words=0, global_words=0)
        assert "static-unbounded-loop" in rules(report)

    def test_wrong_direction_step_is_flagged(self):
        prog = [
            Mov("i", 0.0),
            Mov("n", 10.0),
            Cmp("lt", "more", "i", "n"),
            While("more"),
            Binary("sub", "i", "i", 1.0),  # walks away from the bound
            Cmp("lt", "more", "i", "n"),
            EndWhile(),
        ]
        report = verify_program(prog, shared_words=0, global_words=0)
        assert "static-unbounded-loop" in rules(report)

    def test_constant_reassignment_is_not_progress(self):
        """The hull-decrease trap: Mov(i, 5) forever satisfies i < 10."""
        prog = [
            Mov("i", 0.0),
            Mov("n", 10.0),
            Cmp("lt", "more", "i", "n"),
            While("more"),
            Mov("i", 5.0),
            Cmp("lt", "more", "i", "n"),
            EndWhile(),
        ]
        report = verify_program(prog, shared_words=0, global_words=0)
        assert "static-unbounded-loop" in rules(report)

    def test_exit_write_counts_as_termination(self):
        prog = [
            Mov("i", 0.0),
            Mov("n", 10.0),
            Cmp("lt", "more", "i", "n"),
            While("more"),
            Mov("i", 99.0),  # >= any admissible bound: falsifies i < n
            Cmp("lt", "more", "i", "n"),
            EndWhile(),
        ]
        report = verify_program(prog, shared_words=0, global_words=0)
        assert "static-unbounded-loop" not in rules(report)


class TestMemoryBounds:
    def test_in_budget_store_is_proven(self):
        prog = [LaneId("lane"), Sts("lane", "lane")]
        report = verify_program(prog, shared_words=32, global_words=0)
        assert report.ok
        assert any("shared" in p for p in report.proven)

    def test_oob_store_reports_counterexample_interval(self):
        prog = [
            LaneId("lane"),
            Binary("add", "addr", "lane", 8.0),
            Sts("addr", "lane"),
        ]
        report = verify_program(prog, shared_words=32, global_words=0)
        assert "static-oob-shared" in rules(report)
        msg = next(iter(report.findings)).message
        assert "[8, 39]" in msg  # the derived lane-address interval

    def test_global_oob_flagged(self):
        prog = [LaneId("lane"), Ldg("x", "lane")]
        report = verify_program(prog, shared_words=0, global_words=16)
        assert "static-oob-global" in rules(report)

    def test_masked_range_is_provably_safe(self):
        prog = [
            LaneId("lane"),
            Binary("add", "slot", "lane", "home"),
            Binary("and", "slot", "slot", 31.0),
            Sts("slot", "lane"),
        ]
        report = verify_program(
            prog,
            shared_words=32,
            global_words=0,
            inputs={"home": AbstractValue.uniform_range(0, 1000)},
        )
        assert report.ok, [f.format() for f in report.findings]


class TestDivergenceAndInit:
    def test_shuffle_at_top_level_is_fine(self):
        prog = [Mov("acc", 1.0), ShflDown("t", "acc", 16)]
        report = verify_program(prog, shared_words=0, global_words=0)
        assert report.ok

    def test_shuffle_under_uniform_branch_is_fine(self):
        prog = [
            Mov("acc", 1.0),
            Mov("flag", 1.0),
            Cmp("eq", "go", "flag", 1.0),
            If("go"),
            ShflDown("t", "acc", 16),
            EndIf(),
        ]
        report = verify_program(prog, shared_words=0, global_words=0)
        assert report.ok, [f.format() for f in report.findings]

    def test_shuffle_under_divergent_branch_is_flagged(self):
        prog = [
            LaneId("lane"),
            Mov("acc", 1.0),
            Cmp("lt", "low", "lane", 16.0),
            If("low"),
            ShflDown("t", "acc", 8),
            EndIf(),
        ]
        report = verify_program(prog, shared_words=0, global_words=0)
        assert "static-divergent-shuffle" in rules(report)

    def test_read_of_undefined_register_is_flagged(self):
        prog = [Binary("add", "x", "y", 1.0)]
        report = verify_program(prog, shared_words=0, global_words=0)
        assert "static-uninit-read" in rules(report)

    def test_register_defined_on_only_one_path_is_flagged(self):
        prog = [
            LaneId("lane"),
            Cmp("lt", "low", "lane", 16.0),
            If("low"),
            Mov("x", 1.0),
            EndIf(),
            Binary("add", "y", "x", 1.0),  # x undefined on the else path
        ]
        report = verify_program(prog, shared_words=0, global_words=0)
        assert "static-uninit-read" in rules(report)

    def test_register_defined_on_both_paths_is_fine(self):
        prog = [
            LaneId("lane"),
            Cmp("lt", "low", "lane", 16.0),
            If("low"),
            Mov("x", 1.0),
            EndIf(),
            Cmp("ge", "high", "lane", 16.0),
            If("high"),
            Mov("x", 2.0),
            EndIf(),
            Binary("add", "y", "x", 1.0),
        ]
        # Defined-ness is path-insensitive across *separate* Ifs, so this
        # still flags — but the same If/Else must not:
        prog2 = [
            LaneId("lane"),
            Cmp("lt", "low", "lane", 16.0),
            If("low"),
            Mov("x", 1.0),
            EndIf(),
            Mov("x", 2.0),  # unconditional dominator
            Binary("add", "y", "x", 1.0),
        ]
        report2 = verify_program(prog2, shared_words=0, global_words=0)
        assert report2.ok


class TestVerifyRanges:
    def test_proof_quantifies_over_declared_occupancy(self):
        """``verify_ranges`` is what the proof quantifies over, not the
        traced input: the unguarded push is flagged at the declared
        occupancy range [0, capacity] but proves clean when the range is
        narrowed below the overflow point."""
        bad = next(s for s in KNOWN_BAD if s.name == "bad_heap_push_unguarded")
        assert "static-oob-shared" in rules(verify_kernel(bad))
        narrowed = dict(bad.verify_ranges)
        narrowed["heap_size"] = (0.0, 15.0)
        safe = replace(bad, verify_ranges=narrowed)
        report = verify_kernel(safe)
        assert "static-oob-shared" not in rules(report)

    def test_guarded_registry_push_is_safe_even_past_capacity(self):
        """The registry kernel's has_room guard makes the proof hold for
        *any* claimed occupancy — the refinement inside the branch caps
        the store index regardless of the declared range."""
        spec = next(s for s in REGISTRY if s.name == "heap_push")
        assert spec.verify_ranges["heap_size"] == (0.0, 16.0)
        wider = replace(spec, verify_ranges={"heap_size": (0.0, 24.0)})
        assert verify_kernel(wider).ok
