"""Model-drift cross-checks: analytic meters vs the lane-accurate sim.

The analytic :class:`~repro.simt.warp.Warp` / :class:`~repro.simt.cost.CostModel`
price kernels from closed-form counts; the :class:`WarpSimulator` executes
them lane by lane.  These tests pin the quantities the two layers must
agree on, at documented tolerances:

* **exact (tolerance 0)** — counting quantities with no timing in them:
  global transactions per distance evaluation
  (:meth:`MemorySpace.read_coalesced` vs coalescer output), bank-conflict
  cycles (the SoA layouts are conflict-free by construction), and
  ``ShflDown`` issues per reduction (``log2(32)`` steps, the
  :meth:`Warp.warp_reduce` price).
* **ratio band** — cycle costs, where the single-warp sim exposes the
  latency the analytic model amortizes over resident warps.  Sequential
  maintenance ops measure ~30 cycles/op against the analytic
  ``seq_op_cycles = 20`` (shared-memory load-to-use latency is partially
  exposed in a lone warp), so the band is **[1.0×, 2.0×]** of the
  analytic constant; a drift outside it means one side changed shape.
"""

import math

import numpy as np
import pytest

from repro.analysis import TraceRecorder
from repro.simt import isa
from repro.simt.cost import CostModel
from repro.simt.device import get_device
from repro.simt.kernels import (
    cosine_kernel,
    dot_product_kernel,
    hamming_kernel,
    run_heap_push,
    single_lane_scan_kernel,
    squared_l2_kernel,
)
from repro.simt.memory import MemorySpace
from repro.simt.simulator import WARP_SIZE, WarpSimulator

DEVICE = get_device("v100")

#: Documented band for cycle-level ratios (see module docstring).
SEQ_RATIO_LOW, SEQ_RATIO_HIGH = 1.0, 2.0


def run_distance(program, dim):
    recorder = TraceRecorder()
    rng = np.random.default_rng(3)
    shared = np.zeros(max(dim, WARP_SIZE))
    shared[:dim] = rng.standard_normal(dim)
    global_mem = np.zeros(max(dim, WARP_SIZE))
    global_mem[:dim] = rng.standard_normal(dim)
    sim = WarpSimulator(program, global_mem=global_mem, shared_mem=shared, tracer=recorder)
    sim.set_register("query_base", 0.0)
    sim.set_register("vec_base", 0.0)
    return sim.run(), recorder


class TestDistanceKernelTransactions:
    """Sim coalescer output == analytic read_coalesced, exactly."""

    @pytest.mark.parametrize(
        "builder,dim",
        [
            (squared_l2_kernel, 32),
            (squared_l2_kernel, 64),
            (squared_l2_kernel, 48),  # ragged tail
            (squared_l2_kernel, 128),
            (dot_product_kernel, 64),
            (cosine_kernel, 64),
            (hamming_kernel, 8),
        ],
        ids=lambda p: getattr(p, "__name__", p),
    )
    def test_transactions_match_analytic_model(self, builder, dim):
        stats, _ = run_distance(builder(dim), dim)
        expected = MemorySpace().read_coalesced(4 * dim)
        assert stats.global_transactions == expected

    def test_traffic_feeds_kernel_time_consistently(self):
        """CostModel.kernel_time sees the same bytes either way."""
        dim = 64
        stats, _ = run_distance(squared_l2_kernel(dim), dim)
        meter = MemorySpace()
        meter.read_coalesced(4 * dim)
        model = CostModel(DEVICE)
        t_meter = model.kernel_time([float(stats.cycles)], meter.total_global_bytes)
        t_sim = model.kernel_time([float(stats.cycles)], 4 * dim)
        assert t_meter == t_sim


class TestSharedLayoutConflictFree:
    """The analytic model charges no bank-conflict serialization; the
    lane-accurate trace must agree for every distance kernel."""

    @pytest.mark.parametrize("dim", [32, 48, 64, 128])
    def test_query_broadcast_is_conflict_free(self, dim):
        stats, _ = run_distance(squared_l2_kernel(dim), dim)
        assert stats.shared_conflict_cycles == 0


class TestWarpReducePrice:
    """Warp.warp_reduce charges log2(32) = 5 cycles per reduction; the
    trace must issue exactly that many ShflDown instructions."""

    STEPS = int(math.log2(DEVICE.warp_size))

    @pytest.mark.parametrize(
        "builder,dim,reductions",
        [
            (squared_l2_kernel, 64, 1),
            (dot_product_kernel, 64, 1),
            (hamming_kernel, 8, 1),
            (cosine_kernel, 64, 3),  # dot, ||q||^2, ||v||^2
        ],
        ids=["l2", "ip", "hamming", "cosine"],
    )
    def test_shuffle_issue_count(self, builder, dim, reductions):
        _, recorder = run_distance(builder(dim), dim)
        assert recorder.count_ops(isa.ShflDown) == reductions * self.STEPS


class TestMaintenanceCycleBand:
    """Sequential single-lane work: sim cycles/op within the documented
    [1x, 2x] band of the analytic ``seq_op_cycles``."""

    def test_single_lane_scan_per_op_cycles(self):
        count = 64
        sim = WarpSimulator(
            single_lane_scan_kernel(count),
            global_mem=np.zeros(8),
            shared_mem=np.zeros(count),
        )
        stats = sim.run()
        per_op = stats.cycles / count
        analytic = DEVICE.seq_op_cycles
        assert SEQ_RATIO_LOW * analytic <= per_op <= SEQ_RATIO_HIGH * analytic, (
            f"measured {per_op:.1f} cycles/op vs analytic {analytic}"
        )

    def test_heap_push_per_level_cycles(self):
        """One sift level is ~3 sequential shared ops (two loads, a
        compare/swap); band accordingly: [1x, 2x] of 3 * seq_op_cycles."""
        size, capacity = 15, 32  # full levels: sift depth log2(16) = 4
        dists = np.sort(np.linspace(0.5, 3.0, size))
        ids = np.arange(size, dtype=np.float64)
        *_, stats = run_heap_push(dists, ids, size, 0.25, 99, capacity)
        levels = math.floor(math.log2(size + 1))
        per_level = stats.cycles / levels
        analytic = 3 * DEVICE.seq_op_cycles
        assert SEQ_RATIO_LOW * analytic <= per_level <= SEQ_RATIO_HIGH * analytic, (
            f"measured {per_level:.1f} cycles/level vs analytic {analytic}"
        )
