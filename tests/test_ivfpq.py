"""IVFPQ (Faiss stand-in) tests."""

import numpy as np
import pytest

from repro.baselines.flat import FlatIndex
from repro.baselines.ivfpq import IVFPQIndex
from repro.eval.recall import batch_recall


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(17)
    return rng.normal(size=(800, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def index(data):
    idx = IVFPQIndex(16, nlist=16, m=4, ksub=32, seed=0).train(data)
    idx.add(data)
    return idx


class TestLifecycle:
    def test_add_before_train_raises(self, data):
        idx = IVFPQIndex(16, nlist=8)
        with pytest.raises(RuntimeError):
            idx.add(data)

    def test_search_empty_raises(self, data):
        idx = IVFPQIndex(16, nlist=8).train(data)
        with pytest.raises(RuntimeError):
            idx.search(data[0], 5)

    def test_ntotal(self, index, data):
        assert index.ntotal == len(data)

    def test_all_ids_stored_once(self, index, data):
        ids = np.concatenate(index.lists)
        assert sorted(ids.tolist()) == list(range(len(data)))

    def test_invalid_nlist(self):
        with pytest.raises(ValueError):
            IVFPQIndex(16, nlist=0)

    def test_incremental_add(self, data):
        idx = IVFPQIndex(16, nlist=8, m=4, ksub=16, seed=0).train(data)
        idx.add(data[:100])
        idx.add(data[100:250])
        assert idx.ntotal == 250
        ids = np.concatenate(idx.lists)
        assert sorted(ids.tolist()) == list(range(250))


class TestSearchQuality:
    def test_full_probe_high_recall(self, index, data):
        """Probing all lists leaves only PQ quantization error."""
        flat = FlatIndex(data)
        hits = total = 0
        for q in data[:30]:
            truth = {v for _, v in flat.search(q, 10)}
            got = {v for _, v in index.search(q, 10, nprobe=index.nlist)}
            hits += len(truth & got)
            total += 10
        assert hits / total > 0.5

    def test_recall_monotone_in_nprobe(self, index, data):
        flat = FlatIndex(data)
        gt = np.array([[v for _, v in flat.search(q, 10)] for q in data[:30]])

        def recall(nprobe):
            res = [index.search(q, 10, nprobe=nprobe) for q in data[:30]]
            return batch_recall(res, gt)

        r1, r4, r16 = recall(1), recall(4), recall(16)
        assert r1 <= r4 + 0.02
        assert r4 <= r16 + 0.02

    def test_results_sorted(self, index, data):
        res = index.search(data[0], 10, nprobe=4)
        ds = [d for d, _ in res]
        assert ds == sorted(ds)

    def test_k_validation(self, index, data):
        with pytest.raises(ValueError):
            index.search(data[0], 0)

    def test_nprobe_clamped(self, index, data):
        res = index.search(data[0], 5, nprobe=10_000)
        assert len(res) == 5


class TestGpuSearch:
    def test_gpu_results_match_functional(self, index, data):
        results, timing = index.gpu_search_batch(data[:5], 10, nprobe=4)
        for q, res in zip(data[:5], results):
            assert res == index.search(q, 10, nprobe=4)
        assert timing.kernel_seconds > 0

    def test_more_probes_cost_more_time(self, index, data):
        _, t1 = index.gpu_search_batch(data[:20], 10, nprobe=1)
        _, t16 = index.gpu_search_batch(data[:20], 10, nprobe=16)
        assert t16.kernel_seconds > t1.kernel_seconds

    def test_memory_accounting(self, index, data):
        mem = index.memory_bytes()
        assert mem > 0
        # codes are 4 bytes/vector here + ids 4 bytes + overheads
        assert mem < data.nbytes  # compressed below raw data


class TestFlat:
    def test_flat_exact(self, data):
        flat = FlatIndex(data)
        q = data[5]
        res = flat.search(q, 3)
        assert res[0] == (0.0, 5)
        d = ((data - q) ** 2).sum(axis=1)
        expect = np.argsort(d, kind="stable")[:3]
        assert [v for _, v in res] == expect.tolist()

    def test_flat_k_clamped(self, data):
        flat = FlatIndex(data[:4])
        assert len(flat.search(data[0], 100)) == 4

    def test_flat_k_validation(self, data):
        with pytest.raises(ValueError):
            FlatIndex(data).search(data[0], 0)

    def test_flat_batch(self, data):
        flat = FlatIndex(data)
        out = flat.search_batch(data[:3], 2)
        assert len(out) == 3
