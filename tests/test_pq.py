"""Product quantizer tests."""

import numpy as np
import pytest

from repro.baselines.pq import ProductQuantizer


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(13)
    return rng.normal(size=(400, 16))


@pytest.fixture(scope="module")
def pq(data):
    return ProductQuantizer(16, m=4, ksub=32, seed=0).train(data)


class TestCodec:
    def test_code_shape_and_dtype(self, pq, data):
        codes = pq.encode(data[:10])
        assert codes.shape == (10, 4)
        assert codes.dtype == np.uint8

    def test_decode_reduces_error_vs_mean(self, pq, data):
        """PQ reconstruction should beat the trivial all-mean codec."""
        err = pq.quantization_error(data)
        mean_err = float(((data - data.mean(0)) ** 2).sum(axis=1).mean())
        assert err < mean_err

    def test_error_shrinks_with_more_centroids(self, data):
        small = ProductQuantizer(16, m=4, ksub=4, seed=0).train(data)
        large = ProductQuantizer(16, m=4, ksub=64, seed=0).train(data)
        assert large.quantization_error(data) < small.quantization_error(data)

    def test_error_shrinks_with_more_subspaces(self, data):
        few = ProductQuantizer(16, m=2, ksub=16, seed=0).train(data)
        many = ProductQuantizer(16, m=8, ksub=16, seed=0).train(data)
        assert many.quantization_error(data) < few.quantization_error(data)

    def test_dim_must_divide(self):
        with pytest.raises(ValueError):
            ProductQuantizer(10, m=4)

    def test_ksub_range(self):
        with pytest.raises(ValueError):
            ProductQuantizer(16, m=4, ksub=0)
        with pytest.raises(ValueError):
            ProductQuantizer(16, m=4, ksub=257)

    def test_untrained_raises(self, data):
        pq = ProductQuantizer(16, m=4)
        with pytest.raises(RuntimeError):
            pq.encode(data)


class TestADC:
    def test_adc_matches_decoded_distance(self, pq, data):
        """ADC(q, code) must equal the exact distance to the decoded vector."""
        q = data[0]
        codes = pq.encode(data[1:50])
        table = pq.adc_table(q)
        adc = pq.adc_distances(table, codes)
        decoded = pq.decode(codes)
        exact = ((decoded - q) ** 2).sum(axis=1)
        np.testing.assert_allclose(adc, exact, rtol=1e-8)

    def test_adc_approximates_true_distance(self, pq, data):
        q = data[0]
        codes = pq.encode(data[1:200])
        adc = pq.adc_distances(pq.adc_table(q), codes)
        true = ((data[1:200] - q) ** 2).sum(axis=1)
        # rank correlation: ADC should mostly preserve the ordering
        adc_rank = np.argsort(np.argsort(adc))
        true_rank = np.argsort(np.argsort(true))
        corr = np.corrcoef(adc_rank, true_rank)[0, 1]
        assert corr > 0.8

    def test_memory_accounting(self, pq):
        assert pq.code_bytes(1000) == 4000
        assert pq.memory_bytes() == 4 * 32 * 4 * 4
