"""Behavioural tests for the array abstract interpreter.

Each test defines a tiny kernel inline (registered under a throwaway
``test`` registry so the default analysis run never sees it), analyzes
it, and asserts on findings and proven obligations: transfer precision,
mask refinement, slice arithmetic, loop widening, contract calls, and
the syntactic nondeterminism sweep.
"""

import numpy as np
import pytest

from repro.analysis.arrays.interp import analyze_kernel
from repro.analysis.arrays.nondet import scan_source
from repro.annotations import arr, array_kernel, get_annotation, scalar

REG = "test-interp"


def analyze(func):
    ann = get_annotation(f"{func.__module__}.{func.__qualname__}")
    assert ann is not None, "kernel did not register"
    return analyze_kernel(ann)


def rules(findings):
    return sorted({f.rule for f in findings})


class TestOverflowChecker:
    def test_safe_pack_is_clean_and_proven(self):
        @array_kernel(
            params={"n": (1, 2**31)},
            args={
                "rows": arr("E", lo=0, hi="n-1"),
                "ids": arr("E", lo=0, hi="n-1"),
                "n": scalar("n"),
            },
            registry=REG,
        )
        def safe_pack(rows, ids, n):
            return rows * np.int64(n) + ids

        findings, proven = analyze(safe_pack)
        assert findings == []

    def test_overflowing_pack_reports_counterexample(self):
        @array_kernel(
            params={"n": (1, 2**32)},
            args={
                "rows": arr("E", lo=0, hi="n-1"),
                "ids": arr("E", lo=0, hi="n-1"),
                "n": scalar("n"),
            },
            registry=REG,
        )
        def wide_pack(rows, ids, n):
            return rows * np.int64(n) + ids

        findings, _ = analyze(wide_pack)
        errors = [f for f in findings if f.severity.value == "error"]
        assert errors and all(f.rule == "packed-key-overflow" for f in errors)
        assert any("n=3037000500" in f.message for f in errors)

    def test_uint64_headroom_accepts_shifted_pack(self):
        @array_kernel(
            params={"n": (1, 2**31)},
            args={
                "tgt": arr("E", dtype="uint64", lo=0, hi="n-1"),
                "low": arr("E", dtype="uint64", lo=0, hi=2**32 - 1),
            },
            registry=REG,
        )
        def shift_pack(tgt, low):
            return (tgt << np.uint64(32)) | low

        findings, _ = analyze(shift_pack)
        assert findings == []


class TestBroadcastChecker:
    def test_incompatible_dims_error(self):
        @array_kernel(
            params={"n": (2, 100), "k": (2, 100)},
            args={"a": arr("n"), "b": arr("k")},
            registry=REG,
        )
        def mismatched(a, b):
            return a + b

        findings, _ = analyze(mismatched)
        assert rules(findings) == ["broadcast-mismatch"]

    def test_newaxis_outer_product_is_clean(self):
        @array_kernel(
            params={"n": (1, 100), "k": (1, 100)},
            args={"a": arr("n"), "b": arr("k")},
            registry=REG,
        )
        def outer(a, b):
            return a[:, None] * b[None, :]

        findings, _ = analyze(outer)
        assert findings == []


class TestIndexChecker:
    def test_provable_oob_gather_errors(self):
        @array_kernel(
            params={"n": (1, 100), "E": (1, 100)},
            args={"data": arr("n"), "idx": arr("E", lo=0, hi="n")},
            registry=REG,
        )
        def oob(data, idx):
            return data[idx]

        findings, _ = analyze(oob)
        assert rules(findings) == ["fancy-index-oob"]
        assert findings[0].severity.value == "error"

    def test_in_bounds_gather_is_silent(self):
        @array_kernel(
            params={"n": (1, 100), "E": (1, 100)},
            args={"data": arr("n"), "idx": arr("E", lo=0, hi="n-1")},
            registry=REG,
        )
        def fine(data, idx):
            return data[idx]

        findings, _ = analyze(fine)
        assert findings == []

    def test_clamp_then_gather_is_silent(self):
        # np.minimum against len(x) - 1 must refine the index interval.
        @array_kernel(
            params={"n": (1, 100), "E": (1, 100)},
            args={"data": arr("n"), "idx": arr("E", lo=0, hi="n")},
            registry=REG,
        )
        def clamped(data, idx):
            pos = np.minimum(idx, len(data) - 1)
            return data[pos]

        findings, _ = analyze(clamped)
        assert findings == []

    def test_mask_refinement_tracks_compressed_values(self):
        # data[keep] under keep = idx < n refines the gathered values.
        @array_kernel(
            params={"n": (1, 100), "E": (1, 100)},
            args={"data": arr("n"), "idx": arr("E", lo=0, hi=2**20)},
            registry=REG,
        )
        def masked(data, idx):
            keep = idx < len(data)
            return data[idx[keep]]

        findings, _ = analyze(masked)
        assert findings == []

    def test_slice_arithmetic_keeps_dims_aligned(self):
        # x[1:] and x[:-1] both have extent n - 1: the dedup idiom.
        @array_kernel(
            params={"n": (2, 2**20)},
            args={"x": arr("n", dtype="int64")},
            registry=REG,
        )
        def dedup_mask(x):
            return x[1:] != x[:-1]

        findings, _ = analyze(dedup_mask)
        assert findings == []


class TestAliasingChecker:
    def test_scatter_add_through_dup_index_errors(self):
        @array_kernel(
            params={"n": (2, 100), "E": (2, 100)},
            args={
                "out": arr("n", dtype="float64"),
                "idx": arr("E", lo=0, hi="n-1"),
                "v": arr("E", dtype="float64"),
            },
            registry=REG,
        )
        def scatter(out, idx, v):
            out[idx] += v
            return out

        findings, _ = analyze(scatter)
        assert rules(findings) == ["inplace-aliasing"]

    def test_unique_index_scatter_is_clean(self):
        @array_kernel(
            params={"n": (2, 100)},
            args={
                "out": arr("n", dtype="float64"),
                "x": arr("n", dtype="float64"),
            },
            registry=REG,
        )
        def scatter_arange(out, x):
            idx = np.arange(len(out))
            out[idx] += x
            return out

        findings, _ = analyze(scatter_arange)
        assert findings == []


class TestNondetChecker:
    def test_bare_argsort_on_dup_keys_warns(self):
        @array_kernel(
            params={"E": (2, 100)},
            args={"keys": arr("E", lo=0, hi=10)},
            registry=REG,
        )
        def tiebreak(keys):
            return np.argsort(keys)

        findings, _ = analyze(tiebreak)
        assert rules(findings) == ["nondet-sort"]

    def test_bare_argsort_on_unique_keys_is_proven(self):
        @array_kernel(
            params={"n": (2, 2**20)},
            args={"vals": arr("n", dtype="int64")},
            registry=REG,
        )
        def rank_unique(vals):
            keys = np.arange(len(vals))
            return np.argsort(keys)

        findings, proven = analyze(rank_unique)
        assert findings == []
        assert any("unique" in p for p in proven)


class TestControlFlow:
    def test_branch_join_hulls_values(self):
        @array_kernel(
            params={"n": (1, 100)},
            args={"x": arr("n", lo=0, hi="n-1"), "flag": scalar("n")},
            registry=REG,
        )
        def branchy(x, flag):
            if flag > 0:
                y = x + 1
            else:
                y = x
            return y

        findings, _ = analyze(branchy)
        assert findings == []

    def test_loop_widening_terminates_without_findings(self):
        @array_kernel(
            params={"n": (1, 100)},
            args={"x": arr("n", dtype="float64")},
            registry=REG,
        )
        def looped(x):
            acc = x
            for _ in range(3):
                acc = acc + x
            return acc

        findings, _ = analyze(looped)
        assert findings == []


class TestContractCalls:
    def test_call_into_summarized_kernel_uses_contract(self):
        # pack_rowid's summary proves the int64 bound at the call site
        # and propagates uniqueness for the downstream argsort.
        @array_kernel(
            params={"n": (2, 2**28)},
            args={
                "src": arr("E", lo=0, hi="n-1"),
                "dst": arr("E", lo=0, hi="n-1"),
                "n": scalar("n"),
            },
            registry=REG,
        )
        def pack_and_sort(src, dst, n):
            from repro.structures.soa import pack_rowid

            keys = pack_rowid(src, dst, n)
            return np.sort(keys)

        findings, proven = analyze(pack_and_sort)
        assert findings == []
        assert any("pack_rowid" in p and "int64" in p for p in proven)


class TestNondetScan:
    def test_bare_argsort_flagged(self):
        src = "import numpy as np\n\ndef f(x):\n    return np.argsort(x)\n"
        found = scan_source(src, "mod.py")
        assert [f.rule for f in found] == ["nondet-sort"]

    def test_stable_kind_passes(self):
        src = "import numpy as np\n\ndef f(x):\n    return np.argsort(x, kind='stable')\n"
        assert scan_source(src, "mod.py") == []

    def test_seedless_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert [f.rule for f in scan_source(src, "mod.py")] == ["nondet-rng"]

    def test_seeded_default_rng_passes(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert scan_source(src, "mod.py") == []

    def test_legacy_global_rng_flagged(self):
        src = "import numpy as np\nnp.random.seed(0)\nx = np.random.rand(4)\n"
        assert [f.rule for f in scan_source(src, "mod.py")] == [
            "nondet-rng",
            "nondet-rng",
        ]

    def test_wall_clock_flagged(self):
        src = "import time\n\ndef g():\n    return time.perf_counter()\n"
        assert [f.rule for f in scan_source(src, "mod.py")] == ["nondet-clock"]

    def test_allow_comment_suppresses(self):
        src = (
            "import numpy as np\n"
            "# lint: allow(nondet-sort)\n"
            "order = np.argsort([3, 1, 2])\n"
        )
        assert scan_source(src, "mod.py") == []

    def test_kernel_spans_excluded(self):
        src = "import numpy as np\n\ndef f(x):\n    return np.argsort(x)\n"
        assert scan_source(src, "mod.py", exclude_spans=[(3, 4)]) == []


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
