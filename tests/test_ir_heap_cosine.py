"""IR heap-push and cosine kernel tests (maintenance stage in the ISA)."""

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simt import isa
from repro.simt.kernels import cosine_kernel, run_heap_push
from repro.simt.simulator import WarpSimulator


class TestUnary:
    def _run(self, op, value):
        sim = WarpSimulator(
            [isa.Mov(dst="x", src=value), isa.Unary(op=op, dst="r", a="x")],
            global_mem=np.zeros(8),
        )
        sim.run()
        return sim.register("r")[0]

    def test_sqrt(self):
        assert self._run("sqrt", 16.0) == 4.0

    def test_rsqrt_zero_safe(self):
        assert self._run("rsqrt", 0.0) == 0.0
        assert self._run("rsqrt", 4.0) == 0.5

    def test_abs_neg_floor(self):
        assert self._run("abs", -3.0) == 3.0
        assert self._run("neg", 3.0) == -3.0
        assert self._run("floor", 2.7) == 2.0

    def test_unknown(self):
        with pytest.raises(ValueError):
            self._run("exp", 1.0)


class TestIRHeapPush:
    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False, width=32),
            min_size=1,
            max_size=30,
        )
    )
    def test_min_matches_heapq(self, values):
        cap = 32
        dists = np.zeros(cap)
        ids = np.zeros(cap)
        size = 0
        ref = []
        for j, d in enumerate(values):
            d = float(np.float32(d))
            new_d, new_i, size, _ = run_heap_push(dists, ids, size, d, j, cap)
            dists[:size] = new_d
            ids[:size] = new_i
            heapq.heappush(ref, d)
            assert dists[0] == pytest.approx(ref[0], rel=1e-6)

    def test_heap_property_holds(self):
        cap = 16
        dists = np.zeros(cap)
        ids = np.zeros(cap)
        size = 0
        for j, d in enumerate([9.0, 3.0, 7.0, 1.0, 5.0, 2.0]):
            new_d, new_i, size, _ = run_heap_push(dists, ids, size, d, j, cap)
            dists[:size] = new_d
            ids[:size] = new_i
        for i in range(1, size):
            assert dists[(i - 1) // 2] <= dists[i]

    def test_ids_track_distances(self):
        cap = 8
        dists = np.zeros(cap)
        ids = np.zeros(cap)
        size = 0
        entries = [(5.0, 100), (1.0, 200), (3.0, 300)]
        for d, vid in entries:
            new_d, new_i, size, _ = run_heap_push(dists, ids, size, d, vid, cap)
            dists[:size] = new_d
            ids[:size] = new_i
        assert ids[0] == 200  # id of the minimum distance

    def test_cycles_grow_with_sift_depth(self):
        """Pushing a new minimum sifts to the root: deeper heap, more work
        — the log-factor the analytic queue-op pricing assumes."""
        cap = 64

        def cycles_for(n):
            dists = np.zeros(cap)
            ids = np.zeros(cap)
            size = 0
            for j in range(n):  # descending pushes force full sifts
                new_d, new_i, size, stats = run_heap_push(
                    dists, ids, size, float(n - j), j, cap
                )
                dists[:size] = new_d
                ids[:size] = new_i
            return stats.cycles

        assert cycles_for(31) > cycles_for(3)


class TestCosineKernel:
    def test_matches_numpy(self):
        rng = np.random.default_rng(8)
        q, v = rng.normal(size=70), rng.normal(size=70)
        shared = np.zeros(96)
        shared[:70] = q
        g = np.zeros(96)
        g[:70] = v
        sim = WarpSimulator(cosine_kernel(70), global_mem=g, shared_mem=shared)
        sim.set_register("query_base", 0.0)
        sim.set_register("vec_base", 0.0)
        sim.run()
        expected = -(q @ v) / np.sqrt((q @ q) * (v @ v))
        assert sim.register("acc")[0] == pytest.approx(expected, rel=1e-9)

    def test_orthogonal_is_zero(self):
        q = np.zeros(32)
        q[0] = 1.0
        v = np.zeros(32)
        v[1] = 1.0
        shared = np.zeros(32)
        shared[:] = q
        sim = WarpSimulator(cosine_kernel(32), global_mem=v.copy(), shared_mem=shared)
        sim.set_register("query_base", 0.0)
        sim.set_register("vec_base", 0.0)
        sim.run()
        assert sim.register("acc")[0] == pytest.approx(0.0, abs=1e-12)
