"""End-to-end serving tests: determinism, SLO adaptation, shedding, pricing."""

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.gpu_kernel import GpuSongIndex
from repro.core.sharding import ShardedSongIndex
from repro.serve import (
    AdmissionConfig,
    BatchPolicy,
    Replica,
    ServerConfig,
    ShardedServeEngine,
    SimulatedGpuEngine,
    SongServer,
    build_server,
    run_loadtest,
)


@pytest.fixture(scope="module")
def served(small_dataset, small_graph):
    return small_dataset, small_graph


def make_config(policy="degrade", mode="adaptive", slo_ms=2.0, **kw):
    return ServerConfig(
        base=SearchConfig(k=10, queue_size=64),
        admission=AdmissionConfig(
            policy=policy, slo_p99_s=slo_ms / 1e3, max_queue=kw.pop("max_queue", 256)
        ),
        batch=BatchPolicy(mode=mode, batch_size=8, max_batch=kw.pop("max_batch", 16)),
    )


def loadtest(ds, graph, cfg, rate, n=300, seed=3, replicas=1, gt=True):
    return run_loadtest(
        lambda: build_server(graph, ds.data, cfg, num_replicas=replicas),
        ds.queries,
        rate_qps=rate,
        num_requests=n,
        seed=seed,
        ground_truth=ds.ground_truth(10) if gt else None,
    )


class TestDeterminism:
    def test_identical_reports_for_identical_seeds(self, served):
        ds, graph = served
        cfg = make_config()
        a = loadtest(ds, graph, cfg, 50_000)
        b = loadtest(ds, graph, cfg, 50_000)
        assert a.to_dict() == b.to_dict()
        assert a.metrics == b.metrics

    def test_different_seed_changes_trace(self, served):
        ds, graph = served
        cfg = make_config()
        a = loadtest(ds, graph, cfg, 50_000, seed=3)
        b = loadtest(ds, graph, cfg, 50_000, seed=4)
        assert a.duration_s != b.duration_s


class TestResultsCorrectness:
    def test_served_results_match_direct_search(self, served):
        """Tier-0 serving returns exactly what the batch engine returns."""
        ds, graph = served
        cfg = make_config(policy="reject", mode="fixed", slo_ms=50.0)
        report_holder = {}

        import asyncio

        from repro.serve.clock import run_virtual

        async def main():
            server = build_server(graph, ds.data, cfg)
            await server.start()
            responses = await asyncio.gather(
                *(server.submit(q) for q in ds.queries[:8])
            )
            await server.stop()
            return responses

        responses = run_virtual(main())
        engine = SimulatedGpuEngine(graph, ds.data)
        expected = engine.run_batch(ds.queries[:8], cfg.base).results
        for resp, exp in zip(responses, expected):
            assert resp.ok
            assert resp.results == exp

    def test_recall_under_light_load_matches_offline(self, served):
        ds, graph = served
        cfg = make_config(policy="reject", mode="fixed", slo_ms=50.0)
        report = loadtest(ds, graph, cfg, 1000, n=100)
        assert report.shed == 0
        assert report.recall is not None and report.recall > 0.85


class TestSloAdaptation:
    """The tentpole acceptance demo: fixed violates, adaptive holds."""

    OVERLOAD_QPS = 150_000

    def test_fixed_policy_violates_slo_at_overload(self, served):
        ds, graph = served
        report = loadtest(
            ds, graph, make_config(policy="reject", mode="fixed"), self.OVERLOAD_QPS
        )
        assert not report.slo_met
        assert report.p99_latency_s > report.slo_p99_s

    def test_adaptive_policy_holds_slo_at_overload(self, served):
        ds, graph = served
        report = loadtest(ds, graph, make_config(), self.OVERLOAD_QPS)
        assert report.slo_met
        # it held the SLO by degrading, not by luck
        assert report.degraded_fraction > 0.1
        assert report.shed_rate < 0.5

    def test_adaptive_does_not_degrade_at_light_load(self, served):
        ds, graph = served
        report = loadtest(ds, graph, make_config(), 2_000, n=150)
        assert report.slo_met
        assert report.degraded_fraction == 0.0
        assert report.final_tier == 0

    def test_degraded_recall_is_lower_but_nonzero(self, served):
        ds, graph = served
        light = loadtest(ds, graph, make_config(), 2_000, n=150)
        heavy = loadtest(ds, graph, make_config(), self.OVERLOAD_QPS)
        assert heavy.recall is not None and light.recall is not None
        assert 0.3 < heavy.recall <= light.recall


class TestShedding:
    def test_queue_cap_sheds_under_extreme_load(self, served):
        ds, graph = served
        cfg = make_config(policy="reject", mode="fixed", max_queue=16)
        report = loadtest(ds, graph, cfg, 500_000)
        assert report.shed > 0
        assert report.metrics["shed_reasons"].get("queue_full", 0) > 0
        # shed requests still resolve, with no results
        assert report.completed + report.shed == report.num_requests

    def test_block_policy_never_sheds(self, served):
        ds, graph = served
        cfg = ServerConfig(
            base=SearchConfig(k=10, queue_size=64),
            admission=AdmissionConfig(
                policy="block", slo_p99_s=0.002, max_queue=16
            ),
            batch=BatchPolicy(mode="fixed", batch_size=8, max_batch=32),
        )
        report = loadtest(ds, graph, cfg, 100_000, n=150)
        assert report.shed == 0
        assert report.completed == report.num_requests


class TestReplication:
    def test_two_replicas_raise_throughput(self, served):
        ds, graph = served
        cfg = make_config(policy="reject", mode="fixed")
        one = loadtest(ds, graph, cfg, 100_000, replicas=1)
        two = loadtest(ds, graph, cfg, 100_000, replicas=2)
        assert two.achieved_qps > 1.3 * one.achieved_qps
        assert len(two.metrics["replicas"]) == 2
        # both devices actually served batches
        assert all(r["batches"] > 0 for r in two.metrics["replicas"])


class TestEnginePricing:
    def test_replay_matches_metered_kernel_within_band(self, served):
        """Counter replay must track the fully metered cost model."""
        ds, graph = served
        engine = SimulatedGpuEngine(graph, ds.data)
        gpu = GpuSongIndex(graph, ds.data)
        for qs in (20, 80):
            cfg = SearchConfig(k=10, queue_size=qs)
            _, timing = gpu.search_batch(ds.queries, cfg)
            outcome = engine.run_batch(ds.queries, cfg)
            ratio = outcome.service_seconds / timing.total_seconds
            assert 0.8 < ratio < 1.3
            # results identical to the metered kernel (same lockstep engine)
            results, _ = gpu.search_batch(ds.queries, cfg)
            assert outcome.results == results

    def test_batching_amortizes_modelled_cost(self, served):
        ds, graph = served
        engine = SimulatedGpuEngine(graph, ds.data)
        cfg = SearchConfig(k=10, queue_size=40)
        single = engine.run_batch(ds.queries[:1], cfg).service_seconds
        batch = engine.run_batch(ds.queries[:16], cfg).service_seconds
        assert batch < 16 * single  # batching must amortize

    def test_degraded_tier_is_cheaper(self, served):
        ds, graph = served
        engine = SimulatedGpuEngine(graph, ds.data)
        full = engine.run_batch(
            ds.queries[:8], SearchConfig(k=10, queue_size=80)
        ).service_seconds
        degraded = engine.run_batch(
            ds.queries[:8], SearchConfig(k=10, queue_size=20)
        ).service_seconds
        assert degraded < full


class TestShardedServing:
    def test_sharded_engine_attributes_slowest_shard(self, served):
        ds, _ = served
        index = ShardedSongIndex(ds.data, num_shards=2)
        engine = ShardedServeEngine(index)
        cfg = SearchConfig(k=10, queue_size=40)
        outcome = engine.run_batch(ds.queries[:4], cfg)
        assert len(outcome.detail["per_shard"]) == 2
        assert outcome.detail["slowest_shard"] in (0, 1)
        assert outcome.detail["shard_imbalance"] >= 1.0
        slowest = outcome.detail["per_shard"][outcome.detail["slowest_shard"]]
        assert outcome.service_seconds == pytest.approx(slowest["total_seconds"])

    def test_sharded_replica_in_server(self, served):
        import asyncio

        from repro.serve.clock import run_virtual

        ds, _ = served
        index = ShardedSongIndex(ds.data, num_shards=2)
        cfg = make_config(policy="reject", mode="fixed", slo_ms=50.0)

        async def main():
            server = SongServer([Replica(ShardedServeEngine(index))], cfg)
            await server.start()
            responses = await asyncio.gather(
                *(server.submit(q) for q in ds.queries[:6])
            )
            await server.stop()
            return responses, server.metrics_dict()

        responses, metrics = run_virtual(main())
        assert all(r.ok for r in responses)
        assert "slowest_shard_counts" in metrics["replicas"][0]


class TestBuildFromData:
    def test_serves_any_graph_family(self, served):
        from repro.core.config import BuildConfig
        from repro.serve import build_server_from_data

        ds, _ = served
        cfg = make_config()
        build = BuildConfig(graph_type="cagra", engine="batched")
        report = run_loadtest(
            lambda: build_server_from_data(ds.data, cfg, build=build, degree=8),
            ds.queries,
            rate_qps=50_000,
            num_requests=60,
            seed=3,
            ground_truth=ds.ground_truth(10),
        )
        assert report.completed == 60
        assert report.recall is not None and report.recall > 0.8


class TestMetricsExport:
    def test_metrics_dict_is_json_serializable(self, served):
        import json

        ds, graph = served
        cfg = make_config()
        report = loadtest(ds, graph, cfg, 30_000, n=120)
        payload = json.dumps(report.metrics, sort_keys=True)
        assert "latency" in report.metrics
        assert json.loads(payload)["counters"]["arrived"] == 120

    def test_stage_histograms_are_consistent(self, served):
        ds, graph = served
        cfg = make_config(policy="reject", mode="fixed", slo_ms=50.0)
        report = loadtest(ds, graph, cfg, 10_000, n=100)
        lat = report.metrics["latency"]
        assert lat["total"]["count"] == report.completed
        assert lat["total"]["p99_s"] >= lat["service"]["p99_s"] * 0.5
        assert report.metrics["counters"]["completed"] == report.completed
