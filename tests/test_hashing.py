"""1-bit random projection and Hamming space tests."""

import numpy as np
import pytest

from repro.hashing.hamming import (
    HammingSpace,
    hamming_batch,
    hamming_single,
    packed_bits,
)
from repro.hashing.random_projection import SignRandomProjection


@pytest.fixture(scope="module")
def rp():
    return SignRandomProjection(32, num_bits=128, seed=0)


class TestProjection:
    def test_output_shape(self, rp):
        rng = np.random.default_rng(0)
        sigs = rp.transform(rng.normal(size=(10, 32)))
        assert sigs.shape == (10, 4)
        assert sigs.dtype == np.uint32

    def test_bits_multiple_of_32_required(self):
        with pytest.raises(ValueError):
            SignRandomProjection(8, num_bits=33)
        with pytest.raises(ValueError):
            SignRandomProjection(8, num_bits=0)

    def test_distribution_validated(self):
        with pytest.raises(ValueError):
            SignRandomProjection(8, 32, distribution="uniform")

    def test_dim_mismatch_rejected(self, rp):
        with pytest.raises(ValueError):
            rp.transform(np.zeros((2, 16)))

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(5, 32))
        a = SignRandomProjection(32, 64, seed=9).transform(x)
        b = SignRandomProjection(32, 64, seed=9).transform(x)
        np.testing.assert_array_equal(a, b)

    def test_identical_vectors_zero_hamming(self, rp):
        rng = np.random.default_rng(2)
        x = rng.normal(size=32)
        sigs = rp.transform(np.vstack([x, x]))
        assert hamming_single(sigs[0], sigs[1]) == 0

    def test_opposite_vectors_max_hamming(self, rp):
        rng = np.random.default_rng(3)
        x = rng.normal(size=32)
        sigs = rp.transform(np.vstack([x, -x]))
        assert hamming_single(sigs[0], sigs[1]) == 128

    def test_collision_probability_estimator(self):
        """Normalized Hamming ≈ θ/π within a few percentage points."""
        rng = np.random.default_rng(4)
        rp = SignRandomProjection(24, num_bits=2048, seed=5)
        for _ in range(5):
            u, v = rng.normal(size=24), rng.normal(size=24)
            sigs = rp.transform(np.vstack([u, v]))
            observed = hamming_single(sigs[0], sigs[1]) / 2048
            expected = 1.0 - rp.collision_probability(u, v)
            assert observed == pytest.approx(expected, abs=0.05)

    def test_cauchy_variant_works(self):
        rp = SignRandomProjection(16, 64, distribution="cauchy", seed=0)
        sigs = rp.transform(np.random.default_rng(0).normal(size=(4, 16)))
        assert sigs.shape == (4, 2)

    def test_memory_table_iv(self):
        """Table IV check: 128-bit codes are 4 bytes/point → huge shrink."""
        rp = SignRandomProjection(784, num_bits=128)
        hashed = rp.memory_bytes(8_090_000)
        original = 8_090_000 * 784 * 4
        assert original / hashed > 190  # paper: "more than 190x smaller"

    def test_estimated_angle(self):
        angles = SignRandomProjection.estimated_angle(np.array([0, 64, 128]), 128)
        np.testing.assert_allclose(angles, [0.0, np.pi / 2, np.pi])


class TestHamming:
    def test_single_known_value(self):
        a = np.array([0b1011], dtype=np.uint32)
        b = np.array([0b0001], dtype=np.uint32)
        assert hamming_single(a, b) == 2

    def test_batch_matches_single(self):
        rng = np.random.default_rng(5)
        sigs = rng.integers(0, 2**32, size=(20, 4), dtype=np.uint32)
        q = sigs[0]
        batch = hamming_batch(q, sigs)
        for i in range(20):
            assert batch[i] == hamming_single(q, sigs[i])

    def test_packed_bits(self):
        assert packed_bits(np.zeros((3, 4), dtype=np.uint32)) == 128
        with pytest.raises(ValueError):
            packed_bits(np.zeros((3, 4), dtype=np.int64))

    def test_hamming_space_adapter(self):
        rng = np.random.default_rng(6)
        sigs = rng.integers(0, 2**32, size=(10, 2), dtype=np.uint32)
        space = HammingSpace(sigs)
        assert len(space) == 10
        assert space.num_bits == 64
        assert space.flops_per_distance() == 6
        d = space.batch_distance(sigs[0], sigs)
        assert d[0] == 0

    def test_hamming_space_requires_uint32(self):
        with pytest.raises(ValueError):
            HammingSpace(np.zeros((4, 2), dtype=np.int32))
