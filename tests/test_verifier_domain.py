"""Unit tests for the verifier's abstract domains (intervals, parity,
divergence strides, transfer functions)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verifier.domain import (
    AbstractValue,
    Interval,
    Parity,
    binary_transfer,
    unary_transfer,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def iv(lo, hi):
    return Interval(float(lo), float(hi))


class TestInterval:
    def test_lattice_basics(self):
        assert Interval.empty().is_empty
        assert Interval.const(3.0).is_const
        assert Interval.top().contains(1e30)
        assert iv(0, 4).hull(iv(2, 9)) == iv(0, 9)
        assert iv(0, 4).meet(iv(2, 9)) == iv(2, 4)
        assert iv(3, 5).meet(iv(6, 7)).is_empty

    def test_widening_jumps_unstable_bounds(self):
        assert iv(0, 4).widen(iv(0, 5)) == iv(0, math.inf)
        assert iv(0, 4).widen(iv(-1, 4)) == iv(-math.inf, 4)
        assert iv(0, 4).widen(iv(1, 3)) == iv(0, 4)  # stable: unchanged

    @given(finite, finite, finite, finite)
    @settings(max_examples=60, deadline=None)
    def test_arithmetic_is_sound(self, a, b, x, y):
        """Concrete op of members stays inside the abstract result."""
        first = iv(min(a, b), max(a, b))
        second = iv(min(x, y), max(x, y))
        for name, concrete in [
            ("add", lambda p, q: p + q),
            ("sub", lambda p, q: p - q),
            ("mul", lambda p, q: p * q),
        ]:
            result = getattr(first, name)(second)
            for p in (first.lo, first.hi):
                for q in (second.lo, second.hi):
                    assert result.lo - 1e-6 <= concrete(p, q) <= result.hi + 1e-6

    def test_div_by_interval_containing_zero_is_top(self):
        assert iv(1, 2).div(iv(-1, 1)) == Interval.top()
        assert iv(4, 8).div(iv(2, 2)) == iv(2, 4)

    def test_trunc_is_toward_zero(self):
        assert iv(-2.7, 3.9).trunc() == iv(-2, 3)
        assert iv(-2.7, 3.9).floor() == iv(-3, 3)

    def test_mul_handles_zero_times_infinite(self):
        assert iv(0, 0).mul(Interval.top()) == iv(0, 0)


class TestParity:
    def test_of_and_join(self):
        assert Parity.of(4.0) == Parity.EVEN
        assert Parity.of(7.0) == Parity.ODD
        assert Parity.of(2.5) == Parity.TOP
        assert Parity.join(Parity.EVEN, Parity.EVEN) == Parity.EVEN
        assert Parity.join(Parity.EVEN, Parity.ODD) == Parity.TOP

    def test_arithmetic(self):
        assert Parity.add(Parity.ODD, Parity.ODD) == Parity.EVEN
        assert Parity.add(Parity.ODD, Parity.EVEN) == Parity.ODD
        assert Parity.mul(Parity.EVEN, Parity.ODD) == Parity.EVEN
        assert Parity.mul(Parity.ODD, Parity.ODD) == Parity.ODD


class TestDivergenceLattice:
    def test_constructors_classify(self):
        assert AbstractValue.const(5.0).divergence == "uniform"
        assert AbstractValue.lane_id().divergence == "lane-affine"
        assert AbstractValue.top().divergence == "divergent"
        assert AbstractValue.uniform_range(0, 16).is_uniform

    def test_from_lanes_recovers_exact_stride(self):
        affine = AbstractValue.from_lanes(np.arange(32) * 4.0 + 3.0)
        assert affine.stride == 4.0
        assert affine.interval == iv(3, 3 + 31 * 4)
        assert affine.integral
        uniform = AbstractValue.from_lanes(np.full(32, 7.0))
        assert uniform.is_uniform
        ragged = AbstractValue.from_lanes(np.array([1.0, 2.0, 4.0] + [8.0] * 29))
        assert ragged.stride is None

    def test_affine_strides_compose_through_add_sub(self):
        lane = AbstractValue.lane_id()
        base = AbstractValue.const(100.0)
        addr = binary_transfer("add", base, lane)
        assert addr.stride == 1.0
        doubled = binary_transfer("add", addr, lane)
        assert doubled.stride == 2.0
        assert binary_transfer("sub", doubled, lane).stride == 1.0

    def test_mul_by_constant_scales_stride(self):
        lane = AbstractValue.lane_id()
        assert binary_transfer("mul", lane, AbstractValue.const(8.0)).stride == 8.0
        assert binary_transfer("div", lane, AbstractValue.const(2.0)).stride == 0.5

    def test_unknown_combination_degrades_to_divergent(self):
        lane = AbstractValue.lane_id()
        assert binary_transfer("mul", lane, lane).stride is None
        assert binary_transfer("min", lane, lane).stride is None

    def test_join_keeps_only_agreeing_strides(self):
        lane = AbstractValue.lane_id()
        assert lane.join(lane).stride == 1.0
        assert lane.join(AbstractValue.const(3.0)).stride is None


class TestTransferFunctions:
    def test_bitand_bounds_nonnegative(self):
        lane = AbstractValue.lane_id()
        mask = AbstractValue.const(31.0)
        masked = binary_transfer("and", lane, mask)
        assert masked.interval.lo >= 0.0 and masked.interval.hi <= 31.0
        assert masked.integral

    def test_bitops_are_integral_even_on_float_inputs(self):
        x = AbstractValue(iv(0.0, 10.5), Parity.TOP, False, None)
        assert binary_transfer("or", x, x).integral

    def test_floor_is_identity_on_integral(self):
        lane = AbstractValue.lane_id()
        floored = unary_transfer("floor", lane)
        assert floored == lane  # preserves the affine stride

    def test_floor_on_real_interval(self):
        x = AbstractValue(iv(0.0, 7.5), Parity.TOP, False, 0.0)
        out = unary_transfer("floor", x)
        assert out.interval == iv(0, 7)
        assert out.integral and out.is_uniform

    def test_halving_index_pattern_stays_bounded(self):
        """(i - 1) * 0.5 then floor — the heap parent computation."""
        i = AbstractValue.uniform_range(1, 15)
        pm1 = binary_transfer("sub", i, AbstractValue.const(1.0))
        half = binary_transfer("mul", pm1, AbstractValue.const(0.5))
        parent = unary_transfer("floor", half)
        assert parent.interval == iv(0, 7)
        assert parent.is_uniform

    @given(st.integers(min_value=0, max_value=1000), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_bitop_bounds_sound_on_concrete_ints(self, p, q):
        a = AbstractValue.const(float(p))
        b = AbstractValue.const(float(q))
        assert binary_transfer("and", a, b).interval.contains(float(p & q))
        assert binary_transfer("or", a, b).interval.contains(float(p | q))
        assert binary_transfer("xor", a, b).interval.contains(float(p ^ q))


def test_unknown_ops_raise():
    with pytest.raises(ValueError):
        binary_transfer("pow", AbstractValue.top(), AbstractValue.top())
    with pytest.raises(ValueError):
        unary_transfer("exp", AbstractValue.top())
