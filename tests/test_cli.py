"""CLI and ASCII plot tests."""

import pytest

from repro.cli import build_parser, main
from repro.eval.plot import ascii_qps_recall
from repro.eval.sweep import SweepPoint


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command_parses(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "--dataset", "sift"])
        assert args.methods == ["song"]
        assert args.k == 10
        assert args.build_engine == "serial"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--dataset", "sift"])
        assert args.policy == "adaptive"
        assert args.slo_ms == 2.0
        assert args.replicas == 1

    def test_loadtest_defaults(self):
        args = build_parser().parse_args(["loadtest", "--dataset", "sift"])
        assert args.policy == "both"
        assert args.rates == [20_000.0, 60_000.0, 150_000.0]
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["loadtest", "--dataset", "sift", "--policy", "bogus"]
            )

    def test_build_engine_flag(self):
        args = build_parser().parse_args(
            ["build", "--dataset", "sift", "--out", "x.npz",
             "--build-engine", "batched"]
        )
        assert args.build_engine == "batched"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["build", "--dataset", "sift", "--out", "x.npz",
                 "--build-engine", "gpu"]
            )

    def test_graph_flag_accepts_every_family(self):
        from repro.core.config import GRAPH_TYPES

        for graph in GRAPH_TYPES:
            args = build_parser().parse_args(
                ["build", "--dataset", "sift", "--out", "x.npz",
                 "--graph", graph]
            )
            assert args.graph == graph
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["build", "--dataset", "sift", "--out", "x.npz",
                 "--graph", "bogus"]
            )

    def test_serving_graph_flag(self):
        args = build_parser().parse_args(
            ["serve", "--dataset", "sift", "--graph", "cagra",
             "--build-engine", "batched"]
        )
        assert args.graph == "cagra"
        assert args.build_engine == "batched"
        args = build_parser().parse_args(["loadtest", "--dataset", "sift"])
        assert args.graph == "nsw"

    def test_tier_defaults(self):
        for command in ("search", "serve", "loadtest"):
            args = build_parser().parse_args([command, "--dataset", "sift"])
            assert args.tier == "off"
            assert args.tier_bits == 128
            assert args.no_prefetch is False
            assert args.memory_budget_mb is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["search", "--dataset", "sift", "--tier", "zstd"]
            )

    def test_tier_flags_parse(self):
        args = build_parser().parse_args(
            ["loadtest", "--dataset", "sift", "--tier", "pq",
             "--tier-pq-m", "16", "--tier-overfetch", "8",
             "--tier-page-rows", "32", "--tier-cache-pages", "4",
             "--no-prefetch", "--memory-budget-mb", "0.5"]
        )
        assert args.tier == "pq"
        assert args.tier_pq_m == 16
        assert args.tier_overfetch == 8
        assert args.no_prefetch is True
        assert args.memory_budget_mb == 0.5


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "sift" in out and "nytimes" in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "V100" in out and "TITAN X" in out

    def test_build_and_search_roundtrip(self, tmp_path, capsys):
        index_path = str(tmp_path / "idx.npz")
        rc = main(
            ["build", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--out", index_path]
        )
        assert rc == 0
        rc = main(
            ["search", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--index", index_path, "--k", "5", "--queue", "30"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "recall@5" in out
        assert "QPS" in out

    def test_build_batched_engine_roundtrip(self, tmp_path, capsys):
        index_path = str(tmp_path / "idx.npz")
        rc = main(
            ["build", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--out", index_path, "--build-engine", "batched"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "(batched)" in out
        rc = main(
            ["search", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--index", index_path, "--k", "5", "--queue", "30"]
        )
        assert rc == 0

    def test_build_cagra_roundtrip(self, tmp_path, capsys):
        index_path = str(tmp_path / "idx.npz")
        rc = main(
            ["build", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--out", index_path, "--graph", "cagra",
             "--build-engine", "batched", "--degree", "8"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cagra" in out
        rc = main(
            ["search", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--index", index_path, "--k", "5", "--queue", "30"]
        )
        assert rc == 0

    def test_build_dpg(self, tmp_path, capsys):
        index_path = str(tmp_path / "idx.npz")
        rc = main(
            ["build", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--out", index_path, "--graph", "dpg", "--degree", "8"]
        )
        assert rc == 0
        assert "dpg" in capsys.readouterr().out

    def test_search_index_mismatch_errors(self, tmp_path, capsys):
        index_path = str(tmp_path / "idx.npz")
        main(["build", "--dataset", "sift", "--n", "300", "--queries", "10",
              "--out", index_path])
        rc = main(
            ["search", "--dataset", "sift", "--n", "200", "--queries", "10",
             "--index", index_path]
        )
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_serve_single_point(self, capsys):
        rc = main(
            ["serve", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--rate", "2000", "--requests", "40"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "p99" in out
        assert '"counters"' in out  # metrics JSON is printed

    def test_loadtest_table_and_artifact(self, tmp_path, capsys):
        out_path = str(tmp_path / "sweep.json")
        rc = main(
            ["loadtest", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--rates", "5000", "--requests", "60", "--policy", "both",
             "--out", out_path]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fixed" in out and "adaptive" in out
        import json

        with open(out_path) as f:
            payload = json.load(f)
        assert set(payload) == {"fixed", "adaptive"}
        assert payload["fixed"][0]["offered_qps"] == 5000

    def test_search_tier_bits(self, capsys):
        rc = main(
            ["search", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--k", "5", "--queue", "40", "--tier", "bits",
             "--tier-bits", "64", "--tier-page-rows", "16",
             "--tier-cache-pages", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tier     : bits" in out
        assert "compression" in out
        assert "recall@5" in out
        assert "page hits" in out

    def test_search_tier_pq_no_prefetch(self, capsys):
        rc = main(
            ["search", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--k", "5", "--queue", "40", "--tier", "pq",
             "--tier-pq-m", "8", "--tier-pq-ksub", "16", "--no-prefetch"]
        )
        assert rc == 0
        assert "tier     : pq" in capsys.readouterr().out

    def test_search_tier_respects_memory_budget(self, capsys):
        # A budget far below the dataset: the full-precision engine
        # refuses, the tier serves.
        rc = main(
            ["search", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--k", "5", "--queue", "40", "--tier", "bits",
             "--tier-bits", "64", "--tier-page-rows", "16",
             "--tier-cache-pages", "2", "--memory-budget-mb", "0.15"]
        )
        assert rc == 0
        assert "recall@5" in capsys.readouterr().out

    def test_loadtest_tier_roundtrip(self, tmp_path, capsys):
        out_path = str(tmp_path / "tier.json")
        rc = main(
            ["loadtest", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--rates", "2000", "--requests", "40", "--policy", "fixed",
             "--tier", "bits", "--tier-bits", "64",
             "--tier-page-rows", "16", "--out", out_path]
        )
        assert rc == 0
        assert "fixed" in capsys.readouterr().out
        import json

        with open(out_path) as f:
            payload = json.load(f)
        assert payload["fixed"][0]["offered_qps"] == 2000

    def test_sweep_song_with_plot(self, capsys):
        rc = main(
            ["sweep", "--dataset", "sift", "--n", "300", "--queries", "10",
             "--methods", "song", "--grid", "10", "30", "--plot"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SONG" in out
        assert "recall" in out
        assert "o=SONG" in out  # plot legend


class TestAsciiPlot:
    def _series(self):
        return {
            "A": [SweepPoint(10, 0.5, 1e5), SweepPoint(20, 0.9, 1e4)],
            "B": [SweepPoint(1, 0.4, 5e5), SweepPoint(2, 0.8, 2e5)],
        }

    def test_renders_all_series(self):
        text = ascii_qps_recall(self._series(), title="T")
        assert text.startswith("T")
        assert "o=A" in text and "*=B" in text
        assert "o" in text and "*" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_qps_recall({})
        with pytest.raises(ValueError):
            ascii_qps_recall({"A": []})
        too_many = {str(i): [SweepPoint(1, 0.5, 10.0)] for i in range(9)}
        with pytest.raises(ValueError):
            ascii_qps_recall(too_many)

    def test_extreme_values_clamped(self):
        series = {"A": [SweepPoint(1, 1.5, 1e9), SweepPoint(2, -0.1, 1e-3)]}
        text = ascii_qps_recall(series)  # must not raise / index out of range
        assert "o" in text
