"""Static bounds must dominate what the kernels actually do.

Every registered kernel is verified abstractly *and* executed concretely;
the static cycle/transaction/shuffle upper bounds must be finite and at
least as large as both the traced run and the analytic drift expectation.
The assertion messages document the per-kernel gap so a future tightening
of the transfer functions shows up as a shrinking ratio, not a silent
soundness hole.
"""

import pytest

from repro.analysis.registry import iter_kernel_specs, verify_kernel
from repro.analysis.trace import TraceRecorder
from repro.simt.isa import ShflDown

REGISTRY = list(iter_kernel_specs())


@pytest.fixture(scope="module")
def executions():
    """name -> (WarpStats, shfl issue count) from one concrete run each."""
    runs = {}
    for spec in REGISTRY:
        recorder = TraceRecorder()
        sim = spec.make(recorder)
        stats = sim.run()
        runs[spec.name] = (stats, recorder.count_ops(ShflDown))
    return runs


@pytest.fixture(scope="module")
def reports():
    return {spec.name: verify_kernel(spec) for spec in REGISTRY}


@pytest.mark.parametrize("spec", REGISTRY, ids=lambda s: s.name)
class TestStaticBoundsDominate:
    def test_bounds_are_finite(self, spec, reports):
        bounds = reports[spec.name].bounds
        assert bounds.cycles is not None
        assert bounds.global_transactions is not None
        assert bounds.shfl_count is not None

    def test_cycles_dominate_traced_run(self, spec, reports, executions):
        bounds = reports[spec.name].bounds
        stats, _ = executions[spec.name]
        assert bounds.cycles >= stats.cycles, (
            f"{spec.name}: static cycle bound {bounds.cycles} below the "
            f"traced {stats.cycles} — the abstract cost model is unsound"
        )

    def test_transactions_dominate_traced_run(self, spec, reports, executions):
        bounds = reports[spec.name].bounds
        stats, _ = executions[spec.name]
        assert bounds.global_transactions >= stats.global_transactions, (
            f"{spec.name}: static transaction bound "
            f"{bounds.global_transactions} below traced "
            f"{stats.global_transactions}"
        )

    def test_shuffles_dominate_traced_run(self, spec, reports, executions):
        bounds = reports[spec.name].bounds
        _, shfl = executions[spec.name]
        assert bounds.shfl_count >= shfl, (
            f"{spec.name}: static shuffle bound {bounds.shfl_count} below "
            f"traced {shfl}"
        )

    def test_bounds_dominate_analytic_model(self, spec, reports):
        """verify_kernel itself enforces this; assert the obligation was
        actually discharged (not silently skipped) whenever the drift
        model declares an expectation."""
        report = reports[spec.name]
        assert report.ok
        if spec.drift.global_transactions is not None:
            assert any("global transactions" in p for p in report.proven)
        if spec.drift.shfl_count is not None:
            assert any("shfl" in p for p in report.proven)


# Documented static/dynamic cycle-bound gap per kernel.  The static bound
# quantifies over every admissible input (see ``verify_ranges``) while the
# trace follows one concrete path, so a gap is expected — but a *growing*
# gap means a transfer function degraded (e.g. a loop bound stopped
# resolving and the trip count fell back to widening).  Measured ratios at
# the time of writing: distance kernels ~2.1x (dual-issue pipelining the
# interval model ignores), heap_push 13.1x (bound covers occupancy 0..16,
# trace pushes into a half-full heap), heap_push_full 342.5x (the traced
# run takes the full-heap early exit in 6 cycles; the bound still covers
# the whole sift loop).
_RATIO_CEILING = {
    "heap_push": 16.0,
    "heap_push_full": 400.0,
}
_DEFAULT_RATIO_CEILING = 4.0


def test_documented_gap_is_bounded():
    for spec in REGISTRY:
        recorder = TraceRecorder()
        stats = spec.make(recorder).run()
        bounds = verify_kernel(spec).bounds
        if not stats.cycles:
            continue
        ratio = bounds.cycles / stats.cycles
        ceiling = _RATIO_CEILING.get(spec.name, _DEFAULT_RATIO_CEILING)
        assert ratio <= ceiling, (
            f"{spec.name}: static/dynamic cycle ratio {ratio:.1f} exceeds "
            f"the documented ceiling {ceiling} — a bound degraded"
        )
