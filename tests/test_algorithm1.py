"""Reference Algorithm 1 tests."""

import numpy as np
import pytest

from repro.core.algorithm1 import algorithm1_search
from repro.distances import OpCounter
from repro.graphs.bruteforce_knn import build_knn_graph
from repro.graphs.storage import FixedDegreeGraph


@pytest.fixture(scope="module")
def tiny():
    rng = np.random.default_rng(5)
    data = rng.normal(size=(120, 6)).astype(np.float32)
    return data


class TestExactOnCompleteGraph:
    def test_complete_graph_gives_exact_topk(self, tiny):
        """On a complete graph the greedy search must return the exact
        answer — the Delaunay-superset guarantee the paper cites."""
        n = len(tiny)
        adjacency = [[u for u in range(n) if u != v] for v in range(n)]
        g = FixedDegreeGraph.from_adjacency(adjacency)
        rng = np.random.default_rng(0)
        for _ in range(5):
            q = rng.normal(size=6)
            d = ((tiny - q) ** 2).sum(axis=1)
            truth = np.argsort(d, kind="stable")[:5].tolist()
            res = algorithm1_search(g, tiny, q, 5)
            assert [v for _, v in res] == truth


class TestBasics:
    def test_results_sorted(self, tiny):
        g = build_knn_graph(tiny, 8)
        res = algorithm1_search(g, tiny, tiny[0], 10, queue_size=30)
        ds = [d for d, _ in res]
        assert ds == sorted(ds)

    def test_no_duplicate_results(self, tiny):
        g = build_knn_graph(tiny, 8)
        res = algorithm1_search(g, tiny, tiny[3], 10, queue_size=30)
        ids = [v for _, v in res]
        assert len(ids) == len(set(ids))

    def test_self_query_returns_self_first(self, tiny):
        g = build_knn_graph(tiny, 8)
        res = algorithm1_search(g, tiny, tiny[42], 3, queue_size=20)
        assert res[0] == (0.0, 42)

    def test_k_validation(self, tiny):
        g = build_knn_graph(tiny, 6)
        with pytest.raises(ValueError):
            algorithm1_search(g, tiny, tiny[0], 0)

    def test_counter_populated(self, tiny):
        g = build_knn_graph(tiny, 6)
        c = OpCounter()
        algorithm1_search(g, tiny, tiny[0], 5, queue_size=20, counter=c)
        assert c.distance_calls > 0
        assert c.hops > 0
        assert c.queue_ops > 0
        assert c.hash_ops > 0

    def test_larger_queue_explores_more(self, tiny):
        g = build_knn_graph(tiny, 6)
        c_small, c_large = OpCounter(), OpCounter()
        algorithm1_search(g, tiny, tiny[1], 5, queue_size=5, counter=c_small)
        algorithm1_search(g, tiny, tiny[1], 5, queue_size=60, counter=c_large)
        assert c_large.distance_calls >= c_small.distance_calls
