"""Failure injection and degenerate inputs across the stack."""

import numpy as np
import pytest

from repro.baselines.flat import FlatIndex
from repro.baselines.ivfpq import IVFPQIndex
from repro.core.config import SearchConfig
from repro.core.gpu_kernel import GpuSongIndex
from repro.core.song import SongSearcher
from repro.graphs import build_knn_graph, build_nsw
from repro.graphs.storage import FixedDegreeGraph


class TestDegenerateDatasets:
    def test_all_identical_points(self):
        """Zero-variance data: every distance ties; search must still
        return k distinct ids with deterministic tie-breaking."""
        data = np.ones((50, 8), dtype=np.float32)
        graph = build_knn_graph(data, 5)
        searcher = SongSearcher(graph, data)
        res = searcher.search(data[0], SearchConfig(k=5, queue_size=10))
        ids = [v for _, v in res]
        assert len(set(ids)) == 5
        assert all(d == 0.0 for d, _ in res)

    def test_two_point_dataset(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]], dtype=np.float32)
        graph = FixedDegreeGraph.from_adjacency([[1], [0]])
        searcher = SongSearcher(graph, data)
        res = searcher.search(
            np.array([0.1, 0.1], dtype=np.float32), SearchConfig(k=2, queue_size=2)
        )
        assert [v for _, v in res] == [0, 1]

    def test_k_equals_dataset_size(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(20, 4)).astype(np.float32)
        graph = build_knn_graph(data, 6)
        searcher = SongSearcher(graph, data)
        res = searcher.search(data[0], SearchConfig(k=20, queue_size=40))
        # reachable subset may be smaller than n, but no duplicates ever
        ids = [v for _, v in res]
        assert len(ids) == len(set(ids))

    def test_clustered_duplicates_in_ivfpq(self):
        """Many exact duplicates: k-means must not crash on empty clusters."""
        data = np.repeat(np.eye(8, dtype=np.float64), 10, axis=0)
        idx = IVFPQIndex(8, nlist=4, m=4, ksub=8, seed=0).train(data)
        idx.add(data)
        res = idx.search(data[0], 5, nprobe=4)
        assert len(res) == 5

    def test_single_cluster_nsw(self):
        """NSW over near-duplicate points must stay connected."""
        rng = np.random.default_rng(1)
        data = (np.ones((60, 6)) + 1e-6 * rng.standard_normal((60, 6))).astype(
            np.float32
        )
        graph = build_nsw(data, m=4, ef_construction=16, seed=0)
        graph.validate()


class TestHostileQueries:
    @pytest.fixture(scope="class")
    def searcher(self, small_dataset, small_graph):
        return SongSearcher(small_graph, small_dataset.data)

    def test_far_away_query(self, searcher, small_dataset):
        """A query far outside the data hull still returns k results."""
        q = np.full(small_dataset.dim, 1e6, dtype=np.float32)
        res = searcher.search(q, SearchConfig(k=10, queue_size=30))
        assert len(res) == 10
        assert all(np.isfinite(d) for d, _ in res)

    def test_zero_query_cosine(self, small_dataset, small_graph):
        searcher = SongSearcher(small_graph, small_dataset.data)
        q = np.zeros(small_dataset.dim, dtype=np.float32)
        res = searcher.search(
            q, SearchConfig(k=5, queue_size=20, metric="cosine")
        )
        assert len(res) == 5  # zero-norm handled, not NaN

    def test_flat_index_agreement_on_hostile_query(self, small_dataset):
        q = np.full(small_dataset.dim, -1e5, dtype=np.float32)
        flat = FlatIndex(small_dataset.data)
        res = flat.search(q, 3)
        assert all(np.isfinite(d) for d, _ in res)


class TestCorruptGraphs:
    def test_isolated_entry_point(self, small_dataset):
        """Entry with no out-edges: search returns just the entry."""
        n = 30
        graph = FixedDegreeGraph(n, 4, entry_point=0)
        # vertex 0 isolated; others form a chain (unreachable from 0)
        for v in range(1, n - 1):
            graph.set_neighbors(v, [v + 1])
        searcher = SongSearcher(graph, small_dataset.data[:n])
        res = searcher.search(
            small_dataset.queries[0], SearchConfig(k=5, queue_size=10)
        )
        assert [v for _, v in res] == [0]

    def test_unreachable_region_limits_results(self, small_dataset):
        n = 20
        # two disjoint rings; entry in ring A
        ring_a = [[(v + 1) % 10] for v in range(10)]
        ring_b = [[10 + ((v + 1) % 10)] for v in range(10)]
        graph = FixedDegreeGraph.from_adjacency(ring_a + ring_b, entry_point=0)
        searcher = SongSearcher(graph, small_dataset.data[:n])
        res = searcher.search(
            small_dataset.queries[0], SearchConfig(k=15, queue_size=20)
        )
        ids = {v for _, v in res}
        assert ids <= set(range(10)), "must never reach the disconnected ring"

    def test_gpu_index_on_sparse_graph(self, small_dataset):
        """Rows with zero neighbors must not break the kernel meter."""
        n = 40
        adjacency = [[(v + 1) % n] if v % 3 else [] for v in range(n)]
        adjacency[0] = [1]
        graph = FixedDegreeGraph.from_adjacency(adjacency, degree=2)
        idx = GpuSongIndex(graph, small_dataset.data[:n])
        results, timing = idx.search_batch(
            small_dataset.queries[:2], SearchConfig(k=3, queue_size=6)
        )
        assert timing.kernel_seconds > 0
        assert all(len(r) >= 1 for r in results)


class TestConfigEdgeCases:
    def test_queue_size_equals_k(self, small_dataset, small_graph):
        searcher = SongSearcher(small_graph, small_dataset.data)
        res = searcher.search(
            small_dataset.queries[0], SearchConfig(k=10, queue_size=10)
        )
        assert len(res) == 10

    def test_k_one(self, small_dataset, small_graph):
        searcher = SongSearcher(small_graph, small_dataset.data)
        res = searcher.search(small_dataset.queries[0], SearchConfig(k=1, queue_size=1))
        assert len(res) == 1

    def test_probe_steps_larger_than_queue(self, small_dataset, small_graph):
        searcher = SongSearcher(small_graph, small_dataset.data)
        cfg = SearchConfig(k=5, queue_size=5, probe_steps=50)
        res = searcher.search(small_dataset.queries[0], cfg)
        assert 1 <= len(res) <= 5
