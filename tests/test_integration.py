"""End-to-end integration tests across the whole stack."""

import numpy as np

from repro import (
    GpuSongIndex,
    HNSWIndex,
    SearchConfig,
    build_nsg,
    build_nsw,
)
from repro.baselines import FlatIndex, IVFPQIndex
from repro.core.cpu_song import CpuSongIndex
from repro.data import make_dataset
from repro.eval import batch_recall, sweep_gpu_song, sweep_hnsw, sweep_ivfpq
from repro.eval.sweep import qps_at_recall
from repro.hashing import HammingSpace, SignRandomProjection


class TestFullPipeline:
    def test_song_beats_hnsw_throughput_at_matched_recall(
        self, small_dataset, small_graph
    ):
        """The paper's headline: GPU SONG runs far faster than
        single-thread HNSW at comparable recall."""
        from repro.data.datasets import Dataset

        # Tile the queries so the batch saturates the simulated device
        # (the paper uses 10k-query batches; Fig. 11 shows small batches
        # underutilize the GPU).
        saturated = Dataset(
            name=small_dataset.name,
            data=small_dataset.data,
            queries=np.tile(small_dataset.queries, (10, 1)),
        )
        idx = GpuSongIndex(small_graph, small_dataset.data)
        hnsw = HNSWIndex(
            small_dataset.data, m=8, ef_construction=40, seed=1
        ).build()
        song_pts = sweep_gpu_song(saturated, idx, [10, 20, 40, 80, 160], k=10)
        hnsw_pts = sweep_hnsw(small_dataset, hnsw, [10, 20, 40, 80, 160], k=10)
        target = 0.8
        song_qps = qps_at_recall(song_pts, target)
        hnsw_qps = qps_at_recall(hnsw_pts, target)
        assert song_qps is not None and hnsw_qps is not None
        assert song_qps > 10 * hnsw_qps

    def test_ivfpq_recall_ceiling_on_clustered_data(
        self, clustered_small_dataset
    ):
        """Fig. 5 shape on NYTimes-like data: IVFPQ cannot reach the
        recall the graph method reaches."""
        ds = clustered_small_dataset
        ivf = IVFPQIndex(ds.dim, nlist=16, m=8, ksub=32, seed=0).train(ds.data)
        ivf.add(ds.data)
        pts = sweep_ivfpq(ds, ivf, [1, 4, 16], k=10)
        graph = build_nsw(ds.data, m=8, ef_construction=40, seed=7)
        song = GpuSongIndex(graph, ds.data)
        song_pts = sweep_gpu_song(ds, song, [200], k=10)
        assert song_pts[0].recall > max(p.recall for p in pts)

    def test_nsg_pipeline(self, small_dataset):
        """Fig. 12: SONG accelerates an NSG index too."""
        ds = small_dataset
        nsg = build_nsg(ds.data, degree=12, knn=12, search_len=30)
        idx = GpuSongIndex(nsg, ds.data)
        results, timing = idx.search_batch(ds.queries, SearchConfig(k=10, queue_size=80))
        assert batch_recall(results, ds.ground_truth(10)) > 0.75
        assert timing.qps(ds.num_queries) > 0

    def test_cpu_and_gpu_song_agree(self, small_dataset, small_graph):
        cfg = SearchConfig(k=10, queue_size=50)
        gpu = GpuSongIndex(small_graph, small_dataset.data)
        cpu = CpuSongIndex(small_graph, small_dataset.data)
        g_results, _ = gpu.search_batch(small_dataset.queries[:5], cfg)
        c_batch = cpu.search_batch(small_dataset.queries[:5], cfg)
        for g, c in zip(g_results, c_batch.results):
            assert [v for _, v in g] == [v for _, v in c]


class TestHashedPipeline:
    def test_search_on_hashed_dataset(self):
        """Fig. 14 pipeline: hash to bits, build a graph over Hamming
        space, search with SONG, compare against float-space truth."""
        ds = make_dataset("mnist8m", n=500, num_queries=20)
        rp = SignRandomProjection(ds.dim, num_bits=256, seed=0)
        sig_data = rp.transform(ds.data)
        sig_queries = rp.transform(ds.queries)
        space = HammingSpace(sig_data)

        # Graph built over hashed distances via exact kNN on signatures.
        from repro.graphs.storage import FixedDegreeGraph

        n = len(sig_data)
        adjacency = []
        for v in range(n):
            d = space.batch_distance(sig_data[v], sig_data)
            d[v] = np.inf
            adjacency.append(np.argsort(d, kind="stable")[:10].tolist())
        graph = FixedDegreeGraph.from_adjacency(adjacency)

        idx = GpuSongIndex(graph, sig_data)
        cfg = SearchConfig(k=10, queue_size=80)
        results, timing = idx.search_batch(
            sig_queries, cfg, distance_fn=space.batch_distance
        )
        recall = batch_recall(results, ds.ground_truth(10))
        assert recall > 0.5  # hashed search approximates float-space truth
        assert timing.kernel_seconds > 0

    def test_hashed_dataset_preserved_dtype(self):
        sigs = np.zeros((10, 4), dtype=np.uint32)
        from repro.graphs.storage import FixedDegreeGraph

        g = FixedDegreeGraph.from_adjacency([[1], [0]] + [[0]] * 8)
        idx = GpuSongIndex(g, sigs)
        assert idx.data.dtype == np.uint32


class TestSanityAgainstExact:
    def test_high_queue_size_approaches_exact(self, small_dataset, small_graph):
        idx = GpuSongIndex(small_graph, small_dataset.data)
        flat = FlatIndex(small_dataset.data)
        cfg = SearchConfig(k=10, queue_size=300)
        results, _ = idx.search_batch(small_dataset.queries, cfg)
        gt = small_dataset.ground_truth(10)
        assert batch_recall(results, gt) > 0.9
        # exact reference agrees with cached ground truth
        for q, row in zip(small_dataset.queries[:3], gt[:3]):
            assert [v for _, v in flat.search(q, 10)] == row.tolist()
