"""Virtual-time event loop tests."""

import asyncio
import time

import pytest

from repro.serve.clock import VirtualTimeEventLoop, run_virtual


class TestVirtualClock:
    def test_sleep_advances_virtual_not_wall_time(self):
        async def main():
            loop = asyncio.get_running_loop()
            start = loop.time()
            await asyncio.sleep(3600.0)
            return loop.time() - start

        wall = time.monotonic()
        elapsed = run_virtual(main())
        assert elapsed == pytest.approx(3600.0, rel=1e-9)
        assert time.monotonic() - wall < 5.0

    def test_timer_ordering(self):
        """Callbacks fire in deadline order regardless of creation order."""

        async def main():
            loop = asyncio.get_running_loop()
            order = []
            for delay in (0.5, 0.1, 0.3):
                loop.call_later(delay, order.append, delay)
            await asyncio.sleep(1.0)
            return order

        assert run_virtual(main()) == [0.1, 0.3, 0.5]

    def test_concurrent_sleepers_interleave(self):
        async def main():
            loop = asyncio.get_running_loop()
            log = []

            async def sleeper(name, gap, n):
                for _ in range(n):
                    await asyncio.sleep(gap)
                    log.append((round(loop.time(), 6), name))

            await asyncio.gather(sleeper("a", 0.2, 3), sleeper("b", 0.3, 2))
            return log

        log = run_virtual(main())
        times = [t for t, _ in log]
        assert times == sorted(times)
        assert times == [0.2, 0.3, 0.4, 0.6, 0.6]

    def test_wait_for_timeout_uses_virtual_time(self):
        async def main():
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(asyncio.Event().wait(), timeout=100.0)
            return asyncio.get_running_loop().time()

        assert run_virtual(main()) >= 100.0

    def test_deterministic_across_runs(self):
        async def main():
            loop = asyncio.get_running_loop()
            stamps = []
            for _ in range(5):
                await asyncio.sleep(0.125)
                stamps.append(loop.time())
            return stamps

        assert run_virtual(main()) == run_virtual(main())

    def test_loop_is_selector_subclass(self):
        loop = VirtualTimeEventLoop()
        try:
            assert isinstance(loop, asyncio.SelectorEventLoop)
            assert loop.time() == 0.0
        finally:
            loop.close()

    def test_run_virtual_cancels_leftover_tasks(self):
        async def main():
            asyncio.create_task(asyncio.sleep(10_000))
            return "done"

        # Must return promptly despite the orphan timer.
        wall = time.monotonic()
        assert run_virtual(main()) == "done"
        assert time.monotonic() - wall < 5.0
