"""VisitedSet facade tests: backend routing, deletion rules, auto-grow."""

import pytest

from repro.structures.visited import VisitedBackend, VisitedSet


class TestBackendSelection:
    @pytest.mark.parametrize(
        "backend", [b for b in VisitedBackend]
    )
    def test_insert_contains_roundtrip(self, backend):
        v = VisitedSet(backend=backend, capacity=128)
        assert v.insert(17)
        assert v.contains(17)
        assert 17 in v

    def test_deletion_support_matrix(self):
        assert VisitedBackend.HASH_TABLE.supports_deletion()
        assert VisitedBackend.CUCKOO.supports_deletion()
        assert VisitedBackend.PYSET.supports_deletion()
        assert not VisitedBackend.BLOOM.supports_deletion()

    def test_bloom_delete_raises(self):
        v = VisitedSet(backend=VisitedBackend.BLOOM, capacity=64)
        v.insert(1)
        with pytest.raises(NotImplementedError):
            v.delete(1)

    def test_hash_delete_works(self):
        v = VisitedSet(backend=VisitedBackend.HASH_TABLE, capacity=64)
        v.insert(1)
        assert v.delete(1)
        assert not v.contains(1)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            VisitedSet(backend="magic")


class TestOpsAccounting:
    def test_ops_counted(self):
        v = VisitedSet(capacity=64)
        v.insert(1)
        v.contains(1)
        v.contains(2)
        v.delete(1)
        assert v.ops == 4

    def test_probes_exposed(self):
        v = VisitedSet(capacity=64)
        v.insert(1)
        assert v.probes >= 1


class TestAutoGrow:
    def test_hash_table_grows_past_capacity(self):
        v = VisitedSet(backend=VisitedBackend.HASH_TABLE, capacity=4)
        for i in range(50):
            v.insert(i)
        assert len(v) == 50
        assert v.grow_events >= 1
        for i in range(50):
            assert v.contains(i)

    def test_grow_disabled_raises(self):
        v = VisitedSet(
            backend=VisitedBackend.HASH_TABLE, capacity=4, auto_grow=False
        )
        with pytest.raises(OverflowError):
            for i in range(50):
                v.insert(i)

    def test_grow_preserves_deletions(self):
        v = VisitedSet(backend=VisitedBackend.HASH_TABLE, capacity=4)
        for i in range(10):
            v.insert(i)
        v.delete(3)
        for i in range(10, 40):
            v.insert(i)
        assert not v.contains(3)
        assert v.contains(9)


class TestMemoryOrdering:
    def test_bloom_smaller_than_hash_table(self):
        """The paper's 3x memory claim: Bloom beats the hash table."""
        cap = 1000
        bloom = VisitedSet(backend=VisitedBackend.BLOOM, capacity=cap)
        table = VisitedSet(backend=VisitedBackend.HASH_TABLE, capacity=cap)
        assert bloom.memory_bytes() * 3 <= table.memory_bytes()

    def test_cuckoo_smaller_than_hash_table(self):
        cap = 1000
        cuckoo = VisitedSet(backend=VisitedBackend.CUCKOO, capacity=cap)
        table = VisitedSet(backend=VisitedBackend.HASH_TABLE, capacity=cap)
        assert cuckoo.memory_bytes() < table.memory_bytes()

    def test_clear_resets(self):
        v = VisitedSet(capacity=32)
        v.insert(1)
        v.clear()
        assert len(v) == 0
        assert not v.contains(1)
