"""Unit tests for the array verifier's abstract domains.

Covers the symbolic polynomial layer (:class:`SymExpr` /
:class:`ParamEnv`), the symbolic interval layer (:class:`SInterval`),
the dtype lattice, and the counterexample search that turns an
unprovable packed-key bound into the smallest concrete witness.
"""

import numpy as np
import pytest

from repro.analysis.arrays.dtypes import int_range, is_integer, normalize, promote
from repro.analysis.arrays.interp import find_counterexample
from repro.analysis.arrays.sym import (
    ParamEnv,
    SInterval,
    SymExpr,
    parse_expr,
)

INT64_MAX = 2**63 - 1


class TestSymExpr:
    def test_const_and_var_arithmetic(self):
        n = SymExpr.var("n")
        e = n * n - n + SymExpr.const(3)
        assert e.evaluate({"n": 10}) == 93
        assert not e.is_const
        assert e.params() == ("n",)

    def test_equality_is_structural(self):
        n = SymExpr.var("n")
        assert n + SymExpr.const(1) == SymExpr.const(1) + n
        assert n - n == SymExpr.const(0)
        assert (n - n).is_const

    def test_parse_expr_round_trips(self):
        e = parse_expr("32*w - 1")
        assert e.evaluate({"w": 2}) == 63
        assert parse_expr(7).const_value == 7
        assert parse_expr("n**2").evaluate({"n": 5}) == 25

    def test_subst_composes_polynomials(self):
        e = parse_expr("n*k + 1")
        out = e.subst({"n": parse_expr("m - 1")})
        assert out.evaluate({"m": 4, "k": 10}) == 31

    def test_bounds_over_param_box(self):
        env = ParamEnv({"n": (1, 100)})
        lo, hi = parse_expr("2*n + 5").bounds(env)
        assert (lo, hi) == (7, 205)

    def test_bounds_are_per_monomial(self):
        # Sound but not tight: n**2 - n takes its per-monomial corners
        # independently, so lo dips below the true joint minimum.
        env = ParamEnv({"n": (1, 10)})
        lo, hi = parse_expr("n**2 - n").bounds(env)
        assert lo <= 0 and hi >= 90

    def test_bounds_exact_near_int64(self):
        # Exact int arithmetic: 2**63 - 1 must not round through floats.
        env = ParamEnv({"n": (1, 2**32)})
        _, hi = parse_expr("n**2 - 1").bounds(env)
        assert hi == 2**64 - 1
        assert hi > INT64_MAX

    def test_undeclared_param_is_unbounded(self):
        env = ParamEnv()
        lo, hi = parse_expr("n + 1").bounds(env)
        assert lo == float("-inf") and hi == float("inf")


class TestSymExprFloordiv:
    def test_relational_rule(self):
        # (n**2 - 1) // n == n - 1 exactly: the core precision the
        # unpack_rowid transfer function relies on.
        env = ParamEnv({"n": (1, 2**32)})
        n = SymExpr.var("n")
        bounds = (n * n - SymExpr.const(1)).floordiv(n, env)
        assert bounds is not None
        lo, hi = bounds
        assert lo == hi == n - SymExpr.const(1)

    def test_const_fast_path(self):
        env = ParamEnv()
        q = SymExpr.const(2**64 - 1).floordiv(SymExpr.const(2**32), env)
        assert q is not None
        assert q[0] == q[1] == SymExpr.const(2**32 - 1)

    def test_zero_divisor_refused(self):
        env = ParamEnv()
        assert SymExpr.const(10).floordiv(SymExpr.const(0), env) is None

    def test_remainder_too_wide_refused(self):
        # (n + k) // n: the k remainder can exceed n, so no exact rule.
        env = ParamEnv({"n": (1, 10), "k": (0, 100)})
        expr = parse_expr("n + k")
        assert expr.floordiv(SymExpr.var("n"), env) is None


class TestSInterval:
    def setup_method(self):
        self.env = ParamEnv({"n": (1, 2**20), "k": (1, 64)})
        self.n = SymExpr.var("n")
        self.k = SymExpr.var("k")

    def test_add_sub_stay_symbolic(self):
        a = SInterval.of(0, self.n - SymExpr.const(1))
        b = SInterval.const(1)
        assert a.add(b).hi == self.n
        assert a.sub(b).lo == SymExpr.const(-1)

    def test_add_wraps_numeric_ends(self):
        # A raw python int on one side must not collapse the symbolic
        # side to +/-inf (the _wrap_num regression).
        a = SInterval.of(0, self.n)
        b = SInterval(SymExpr.const(0), 5.0)
        assert a.add(b).hi == self.n + SymExpr.const(5)

    def test_mul_nonnegative_is_exact(self):
        a = SInterval.of(0, self.n - SymExpr.const(1))
        b = SInterval.const(self.k)
        hi = a.mul(b, self.env).hi
        assert hi == (self.n - SymExpr.const(1)) * self.k

    def test_floordiv_relational(self):
        packed = SInterval.of(0, self.n * self.n - SymExpr.const(1))
        out = packed.floordiv(SInterval.const(self.n), self.env)
        assert out.lo == SymExpr.const(0)
        assert out.hi == self.n - SymExpr.const(1)

    def test_mod_prefers_symbolic_divisor_bound(self):
        # [0, k*n**2 - 1] % n: the dividend's hi is incomparable with
        # n - 1 numerically, but the divisor bound n - 1 is exact.
        wide = SInterval.of(
            0, self.k * self.n * self.n - SymExpr.const(1)
        )
        out = wide.mod(SInterval.const(self.n), self.env)
        assert out.hi == self.n - SymExpr.const(1)

    def test_mod_tightens_to_small_dividend(self):
        # k <= 64 < 128, so x.hi is provably below the divisor bound and
        # the result keeps the tighter dividend end.
        small = SInterval.of(0, self.k)
        out = small.mod(SInterval.const(SymExpr.const(128)), self.env)
        assert out.hi == self.k

    def test_mod_negative_dividend_stays_in_divisor_range(self):
        signed = SInterval.of(SymExpr.const(-5), self.k)
        out = signed.mod(SInterval.const(self.n), self.env)
        assert out.lo == SymExpr.const(0)
        assert out.hi == self.n - SymExpr.const(1)

    def test_hull_and_meet(self):
        a = SInterval.of(0, self.n)
        b = SInterval.of(2, self.n + SymExpr.const(3))
        h = a.hull(b, self.env)
        assert h.lo == SymExpr.const(0) and h.hi == self.n + SymExpr.const(3)
        m = a.meet(b, self.env)
        assert m.lo == SymExpr.const(2) and m.hi == self.n

    def test_contains_is_provability(self):
        outer = SInterval.of(0, self.n)
        inner = SInterval.of(1, self.n - SymExpr.const(1))
        assert outer.contains(inner, self.env)
        assert not inner.contains(outer, self.env)

    def test_widen_jumps_unstable_ends(self):
        a = SInterval.of(0, self.n)
        grown = SInterval.of(0, self.n + SymExpr.const(1))
        w = a.widen(grown, self.env)
        assert w.lo == SymExpr.const(0)
        assert w.hi == float("inf")
        # A stable bound survives widening untouched.
        assert a.widen(a, self.env).same(a)


class TestDTypeLattice:
    def test_promotion_matches_numpy(self):
        for a, b in [
            ("int32", "int64"),
            ("uint32", "int64"),
            ("int64", "float32"),
            ("uint8", "uint32"),
            ("bool", "int32"),
        ]:
            got = promote(a, b)
            want = np.result_type(np.dtype(a), np.dtype(b)).name
            assert got == want, (a, b, got, want)

    def test_weak_scalar_adopts_array_dtype(self):
        # NEP 50: a python int against an int32 array stays int32.
        assert promote("int32", None) == "int32"
        assert promote(None, "uint64") == "uint64"

    def test_int_range_endpoints(self):
        assert int_range("int64") == (-(2**63), 2**63 - 1)
        assert int_range("uint32") == (0, 2**32 - 1)
        assert int_range("bool") == (0, 1)
        assert int_range("float64") is None

    def test_normalize_and_predicates(self):
        assert normalize("int") == np.dtype("int").name
        assert is_integer("uint8") and not is_integer("float32")


class TestCounterexampleSearch:
    def test_issue_witness_for_packed_key(self):
        # rows * n + ids with rows, ids <= n - 1: max is n**2 - 1, which
        # first exceeds int64 at n = 3037000500 (ceil(2**31.5)).
        env = ParamEnv({"n": (1, 2**32)})
        expr = parse_expr("n**2 - 1")
        witness = find_counterexample(expr, env, INT64_MAX)
        assert witness == {"n": 3037000500}
        assert expr.evaluate(witness) > INT64_MAX
        assert expr.evaluate({"n": witness["n"] - 1}) <= INT64_MAX

    def test_no_witness_when_bound_fits(self):
        env = ParamEnv({"n": (1, 2**31)})
        expr = parse_expr("n**2 - 1")
        assert find_counterexample(expr, env, INT64_MAX) is None

    def test_unbounded_param_defers(self):
        env = ParamEnv()
        expr = parse_expr("n**2")
        assert find_counterexample(expr, env, INT64_MAX) is None

    def test_multi_param_minimizes_each(self):
        env = ParamEnv({"a": (1, 1000), "b": (1, 1000)})
        expr = parse_expr("a*b")
        witness = find_counterexample(expr, env, 10_000)
        assert witness is not None
        assert expr.evaluate(witness) > 10_000
        for name in ("a", "b"):
            shrunk = dict(witness)
            shrunk[name] -= 1
            assert expr.evaluate(shrunk) <= 10_000 or shrunk[name] == 0


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
