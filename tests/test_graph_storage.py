"""Fixed-degree graph storage tests."""

import numpy as np
import pytest

from repro.graphs.storage import PAD, FixedDegreeGraph


class TestConstruction:
    def test_basic(self):
        g = FixedDegreeGraph(4, 2)
        g.set_neighbors(0, [1, 2])
        g.set_neighbors(1, [0])
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(1)) == [0]
        assert list(g.neighbors(2)) == []
        assert g.out_degree(0) == 2

    def test_row_is_padded(self):
        g = FixedDegreeGraph(3, 4)
        g.set_neighbors(0, [1, 2])
        assert list(g.row(0)) == [1, 2, PAD, PAD]

    def test_from_adjacency_infers_degree(self):
        g = FixedDegreeGraph.from_adjacency([[1, 2], [0], [0, 1]])
        assert g.degree == 2
        assert g.num_edges() == 5

    def test_from_adjacency_truncates(self):
        g = FixedDegreeGraph.from_adjacency([[1, 2, 3], [0], [0], [0]], degree=2)
        assert list(g.neighbors(0)) == [1, 2]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            FixedDegreeGraph(0, 2)
        with pytest.raises(ValueError):
            FixedDegreeGraph(4, 0)
        with pytest.raises(ValueError):
            FixedDegreeGraph(4, 2, entry_point=9)
        with pytest.raises(ValueError):
            FixedDegreeGraph.from_adjacency([])

    def test_rejects_self_loop_and_out_of_range(self):
        g = FixedDegreeGraph(3, 2)
        with pytest.raises(ValueError, match="own neighbor"):
            g.set_neighbors(0, [0])
        with pytest.raises(ValueError, match="out of range"):
            g.set_neighbors(0, [7])
        with pytest.raises(ValueError, match="exceed degree"):
            g.set_neighbors(0, [1, 2, 1])


class TestAddEdge:
    def test_add_edge(self):
        g = FixedDegreeGraph(3, 2)
        assert g.add_edge(0, 1)
        assert g.add_edge(0, 2)
        assert not g.add_edge(0, 1)  # duplicate
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_add_edge_full_row(self):
        g = FixedDegreeGraph(4, 1)
        assert g.add_edge(0, 1)
        assert not g.add_edge(0, 2)  # no free slot


class TestAccounting:
    def test_memory_bytes_fixed_layout(self):
        """Memory is exactly num_vertices * degree * 4 — the property that
        makes index-free vertex location possible (paper Sec. IV-A)."""
        g = FixedDegreeGraph(100, 16)
        assert g.memory_bytes() == 100 * 16 * 4

    def test_paper_example_sizing(self):
        """8M points at degree 16 is under 1 GB (paper: 988 MB)."""
        g_bytes = 8_090_000 * 16 * 4
        assert g_bytes < 1024**3

    def test_reverse_adjacency(self):
        g = FixedDegreeGraph.from_adjacency([[1], [2], [0]])
        rev = g.reverse_adjacency()
        assert rev == [[2], [0], [1]]

    def test_validate_passes_on_good_graph(self):
        g = FixedDegreeGraph.from_adjacency([[1, 2], [0], [0, 1]])
        g.validate()

    def test_validate_catches_corruption(self):
        g = FixedDegreeGraph(3, 2)
        g.set_neighbors(0, [1, 2])
        g.adjacency_array[0, 1] = 1  # duplicate injected behind the API
        with pytest.raises(ValueError, match="duplicate"):
            g.validate()

    def test_adjacency_array_dtype(self):
        g = FixedDegreeGraph(3, 2)
        assert g.adjacency_array.dtype == np.int32
