"""Multi-GPU sharding tests."""

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.sharding import ShardedSongIndex
from repro.eval.recall import batch_recall


@pytest.fixture(scope="module")
def sharded(small_dataset):
    return ShardedSongIndex(small_dataset.data, num_shards=3)


class TestConstruction:
    def test_shards_partition_data(self, sharded, small_dataset):
        assert sum(sharded.shard_sizes()) == small_dataset.num_data
        all_ids = np.concatenate(sharded._global_ids)
        assert sorted(all_ids.tolist()) == list(range(small_dataset.num_data))

    def test_invalid_args(self, small_dataset):
        with pytest.raises(ValueError):
            ShardedSongIndex(small_dataset.data, num_shards=0)
        with pytest.raises(ValueError):
            ShardedSongIndex(small_dataset.data[:2], num_shards=5)
        with pytest.raises(ValueError):
            ShardedSongIndex(
                small_dataset.data, num_shards=2, devices=["v100"] * 3
            )

    def test_device_broadcast(self, small_dataset):
        idx = ShardedSongIndex(small_dataset.data[:60], num_shards=2, devices="p40")
        assert all(s.device.name.endswith("P40") for s in idx.shards)


class TestSearch:
    def test_global_ids_returned(self, sharded, small_dataset):
        cfg = SearchConfig(k=10, queue_size=60)
        results, _ = sharded.search_batch(small_dataset.queries[:5], cfg)
        for res in results:
            for _, v in res:
                assert 0 <= v < small_dataset.num_data

    def test_merge_sorted_and_unique(self, sharded, small_dataset):
        cfg = SearchConfig(k=10, queue_size=60)
        results, _ = sharded.search_batch(small_dataset.queries[:5], cfg)
        for res in results:
            ds = [d for d, _ in res]
            assert ds == sorted(ds)
            ids = [v for _, v in res]
            assert len(ids) == len(set(ids))

    def test_recall_comparable_to_single_index(self, sharded, small_dataset):
        """Sharding searches every shard, so recall should not collapse."""
        cfg = SearchConfig(k=10, queue_size=80)
        results, _ = sharded.search_batch(small_dataset.queries, cfg)
        recall = batch_recall(results, small_dataset.ground_truth(10))
        assert recall > 0.75

    def test_wall_time_is_max_of_shards(self, sharded, small_dataset):
        cfg = SearchConfig(k=10, queue_size=40)
        _, timing = sharded.search_batch(small_dataset.queries[:10], cfg)
        per_shard = [t.total_seconds for t in timing["shard_timings"]]
        assert timing["wall_seconds"] == pytest.approx(max(per_shard))

    def test_per_shard_attribution(self, sharded, small_dataset):
        """Timing must attribute latency per shard for serving/benchmarks."""
        cfg = SearchConfig(k=10, queue_size=40)
        _, timing = sharded.search_batch(small_dataset.queries[:10], cfg)
        per_shard = timing["per_shard"]
        assert len(per_shard) == 3
        for s, row in enumerate(per_shard):
            assert row["shard"] == s
            assert row["size"] == sharded.shard_sizes()[s]
            assert row["total_seconds"] == pytest.approx(
                timing["shard_timings"][s].total_seconds
            )
            assert 0 < row["kernel_seconds"] <= row["total_seconds"]
            assert row["transfer_seconds"] > 0
            assert row["qps"] > 0
            assert row["occupancy_warps_per_sm"] > 0
            assert isinstance(row["device"], str)

    def test_slowest_shard_and_imbalance(self, sharded, small_dataset):
        cfg = SearchConfig(k=10, queue_size=40)
        _, timing = sharded.search_batch(small_dataset.queries[:10], cfg)
        seconds = [t.total_seconds for t in timing["shard_timings"]]
        assert timing["slowest_shard"] == int(np.argmax(seconds))
        assert timing["shard_imbalance"] == pytest.approx(
            max(seconds) / (sum(seconds) / len(seconds))
        )
        assert timing["shard_imbalance"] >= 1.0
        assert timing["wall_seconds"] == pytest.approx(
            seconds[timing["slowest_shard"]]
        )

    def test_memory_split_across_devices(self, sharded, small_dataset):
        per_dev = sharded.per_device_memory_bytes()
        assert len(per_dev) == 3
        # each shard holds roughly a third of the data
        total_data = small_dataset.data.nbytes
        for b in per_dev:
            assert b < total_data  # strictly less than the whole dataset
