"""Meter-layer tests: event → cost mapping for each machine model."""

from dataclasses import fields

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import SearchConfig
from repro.core.gpu_kernel import Placement, WarpMeter
from repro.core.stages import CountingMeter, NullMeter
from repro.distances import OpCounter, get_metric
from repro.simt.device import get_device
from repro.simt.memory import MemorySpace
from repro.simt.warp import Warp
from repro.structures.visited import VisitedBackend


def _placement(shared=True):
    return Placement(
        frontier_in_shared=shared,
        topk_in_shared=shared,
        visited_in_shared=shared,
        shared_bytes_per_warp=1024,
    )


def _meter(warp, config, shared=True):
    return WarpMeter(
        warp, config, _placement(shared), get_metric("l2").flops_per_distance
    )


class TestNullMeter:
    def test_all_events_are_noops(self):
        m = NullMeter()
        m.stage("locate")
        m.pop_frontier()
        m.push_frontier(2)
        m.read_graph_row(16)
        m.visited_test(3)
        m.visited_insert()
        m.visited_delete()
        m.bulk_distance(5, 32)
        m.topk_update()  # nothing raised, nothing recorded


class TestCountingMeter:
    def test_distance_accounting(self):
        c = OpCounter()
        m = CountingMeter(c, dim=16, flops_per_distance=48)
        m.bulk_distance(10, 16)
        assert c.distance_calls == 10
        assert c.distance_flops == 480
        assert c.vector_reads == 10

    def test_queue_and_hash_accounting(self):
        c = OpCounter()
        m = CountingMeter(c, dim=16, flops_per_distance=48)
        m.pop_frontier()
        m.push_frontier(3)
        m.topk_update(2)
        m.visited_test(4)
        m.visited_insert(2)
        m.visited_delete(1)
        m.read_graph_row(16)
        assert c.queue_ops == 6
        assert c.hash_ops == 7
        assert c.graph_reads == 16
        assert c.hops == 1


class TestWarpMeter:
    def test_stage_attribution(self):
        warp = Warp(get_device("v100"))
        m = _meter(warp, SearchConfig(k=10, queue_size=32))
        m.stage("locate")
        m.pop_frontier()
        m.stage("distance")
        m.bulk_distance(4, 64)
        m.stage("maintain")
        m.visited_insert()
        assert set(warp.stage_cycles) == {"locate", "distance", "maintain"}

    def test_queue_ops_logarithmic_in_queue_size(self):
        dev = get_device("v100")
        w_small, w_big = Warp(dev), Warp(dev)
        _meter(w_small, SearchConfig(k=10, queue_size=16)).pop_frontier()
        _meter(w_big, SearchConfig(k=10, queue_size=4096)).pop_frontier()
        assert w_big.cycles > w_small.cycles
        ratio = w_big.cycles / w_small.cycles
        assert ratio < 4  # log(4096)/log(16) = 3

    def test_spilled_structures_cost_more(self):
        dev = get_device("v100")
        cfg = SearchConfig(k=10, queue_size=32)
        w_shared, w_global = Warp(dev), Warp(dev)
        _meter(w_shared, cfg, shared=True).pop_frontier()
        _meter(w_global, cfg, shared=False).pop_frontier()
        assert w_global.cycles > w_shared.cycles

    def test_multi_query_scatters_graph_reads(self):
        dev = get_device("v100")
        w1, w4 = Warp(dev), Warp(dev)
        _meter(w1, SearchConfig(k=10, queue_size=32)).read_graph_row(16)
        _meter(w4, SearchConfig(k=10, queue_size=32, multi_query=4)).read_graph_row(16)
        assert w1.memory.scattered_accesses == 0
        assert w4.memory.scattered_accesses == 16
        assert w4.memory.total_global_bytes > w1.memory.total_global_bytes

    def test_multi_query_narrows_distance_lanes(self):
        dev = get_device("v100")
        w1, w4 = Warp(dev), Warp(dev)
        _meter(w1, SearchConfig(k=10, queue_size=32)).bulk_distance(8, 64)
        _meter(w4, SearchConfig(k=10, queue_size=32, multi_query=4)).bulk_distance(8, 64)
        assert w4.cycles > w1.cycles

    def test_bulk_distance_reads_vector_bytes(self):
        warp = Warp(get_device("v100"))
        _meter(warp, SearchConfig(k=10, queue_size=32)).bulk_distance(6, 50)
        assert warp.memory.coalesced_bytes == 6 * 50 * 4

    def test_backend_op_step_ordering(self):
        """The open-addressing table probes warp-parallel (1 step); the
        single maintaining thread walks the Cuckoo buckets (3) and the
        Bloom positions (4) sequentially."""
        dev = get_device("v100")
        cycles = {}
        for backend in (
            VisitedBackend.HASH_TABLE,
            VisitedBackend.CUCKOO,
            VisitedBackend.BLOOM,
        ):
            w = Warp(dev)
            _meter(w, SearchConfig(k=10, queue_size=32, visited_backend=backend)
                   ).visited_test()
            cycles[backend] = w.cycles
        assert (
            cycles[VisitedBackend.HASH_TABLE]
            < cycles[VisitedBackend.CUCKOO]
            < cycles[VisitedBackend.BLOOM]
        )


def _random_memspace(draw):
    counts = draw(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=3, max_size=3)
    )
    m = MemorySpace()
    m.read_coalesced(counts[0])
    m.read_scattered(counts[1])
    m.access_shared(counts[2])
    return m


class TestMeterConservation:
    """merge/reset are field-generic: every counter — including ones
    added after merge was written — must be conserved, never dropped."""

    @given(st.data())
    def test_memoryspace_merge_conserves_every_field(self, data):
        a = _random_memspace(data.draw)
        b = _random_memspace(data.draw)
        before = {f.name: getattr(a, f.name) + getattr(b, f.name) for f in fields(a)}
        a.merge(b)
        after = {f.name: getattr(a, f.name) for f in fields(a)}
        assert after == before

    @given(st.data())
    def test_memoryspace_total_bytes_additive_under_merge(self, data):
        a = _random_memspace(data.draw)
        b = _random_memspace(data.draw)
        expected = a.total_global_bytes + b.total_global_bytes
        a.merge(b)
        assert a.total_global_bytes == expected

    def test_memoryspace_reset_zeroes_every_field(self):
        m = MemorySpace()
        m.read_coalesced(512)
        m.read_scattered(7)
        m.access_shared(3)
        m.reset()
        assert all(getattr(m, f.name) == 0 for f in fields(m))

    @staticmethod
    def _random_warp(draw):
        w = Warp(get_device("v100"))
        stages = ("locate", "distance", "maintain")
        for _ in range(draw(st.integers(min_value=0, max_value=8))):
            w.set_stage(draw(st.sampled_from(stages)))
            op = draw(st.integers(min_value=0, max_value=4))
            if op == 0:
                w.simd_compute(draw(st.integers(min_value=1, max_value=500)))
            elif op == 1:
                w.warp_reduce(draw(st.integers(min_value=1, max_value=4)))
            elif op == 2:
                w.global_read_coalesced(draw(st.integers(min_value=0, max_value=4096)))
            elif op == 3:
                w.shared_access(draw(st.integers(min_value=1, max_value=64)))
            else:
                w.sequential(
                    draw(st.integers(min_value=1, max_value=32)),
                    in_shared=draw(st.booleans()),
                )
        return w

    @given(st.data())
    def test_warp_merge_conserves_cycles_and_stages(self, data):
        a = self._random_warp(data.draw)
        b = self._random_warp(data.draw)
        total_cycles = a.cycles + b.cycles
        total_mem = {
            f.name: getattr(a.memory, f.name) + getattr(b.memory, f.name)
            for f in fields(a.memory)
        }
        stage_sum = dict(a.stage_cycles)
        for s, c in b.stage_cycles.items():
            stage_sum[s] = stage_sum.get(s, 0.0) + c
        a.merge(b)
        assert a.cycles == total_cycles
        assert {f.name: getattr(a.memory, f.name) for f in fields(a.memory)} == total_mem
        assert a.stage_cycles == stage_sum
        # the stage attribution invariant survives merging
        assert a.cycles == pytest.approx(sum(a.stage_cycles.values()))
