"""Graph persistence round-trip tests."""

import numpy as np
import pytest

from repro.graphs import build_nsw, load_graph, save_graph
from repro.graphs.storage import FixedDegreeGraph


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path, small_dataset):
        graph = build_nsw(small_dataset.data[:200], m=4, ef_construction=16, seed=3)
        path = str(tmp_path / "index.npz")
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.num_vertices == graph.num_vertices
        assert loaded.degree == graph.degree
        assert loaded.entry_point == graph.entry_point
        np.testing.assert_array_equal(
            loaded.adjacency_array, graph.adjacency_array
        )

    def test_suffix_added_automatically(self, tmp_path):
        g = FixedDegreeGraph.from_adjacency([[1], [0]])
        base = str(tmp_path / "graph")
        save_graph(g, base)  # numpy appends .npz
        loaded = load_graph(base)
        assert loaded.num_vertices == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(str(tmp_path / "nope.npz"))

    def test_version_check(self, tmp_path):
        g = FixedDegreeGraph.from_adjacency([[1], [0]])
        path = str(tmp_path / "g.npz")
        np.savez_compressed(
            path,
            version=np.int64(99),
            adjacency=g.adjacency_array,
            counts=np.array([1, 1]),
            entry_point=np.int64(0),
        )
        with pytest.raises(ValueError, match="version"):
            load_graph(path)

    def test_loaded_graph_searches_identically(self, tmp_path, small_dataset):
        from repro.core.algorithm1 import algorithm1_search

        data = small_dataset.data[:200]
        graph = build_nsw(data, m=4, ef_construction=16, seed=3)
        path = str(tmp_path / "g.npz")
        save_graph(graph, path)
        loaded = load_graph(path)
        for q in small_dataset.queries[:5]:
            a = algorithm1_search(graph, data, q, 5, queue_size=20)
            b = algorithm1_search(loaded, data, q, 5, queue_size=20)
            assert a == b
