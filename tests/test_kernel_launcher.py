"""Kernel launcher and stage profiler tests."""

import pytest

from repro.simt.device import get_device
from repro.simt.kernel import KernelLauncher
from repro.simt.profiler import StageProfiler
from repro.simt.warp import Warp


def _toy_kernel(q_index: int, warp: Warp):
    warp.set_stage("locate")
    warp.sequential(4)
    warp.set_stage("distance")
    warp.simd_compute(320)
    warp.global_read_coalesced(512)
    warp.set_stage("maintain")
    warp.sequential(8)
    return q_index * 2


class TestLauncher:
    def test_outputs_in_order(self):
        launcher = KernelLauncher(get_device("v100"))
        res = launcher.launch(_toy_kernel, num_queries=10)
        assert res.outputs == [q * 2 for q in range(10)]

    def test_timing_positive(self):
        launcher = KernelLauncher(get_device("v100"))
        res = launcher.launch(_toy_kernel, num_queries=10, htod_bytes=4096, dtoh_bytes=256)
        assert res.kernel_seconds > 0
        assert res.htod_seconds > 0
        assert res.dtoh_seconds > 0
        assert res.total_seconds == pytest.approx(
            res.kernel_seconds + res.htod_seconds + res.dtoh_seconds
        )

    def test_qps(self):
        launcher = KernelLauncher(get_device("v100"))
        res = launcher.launch(_toy_kernel, num_queries=100)
        assert res.qps(100) == pytest.approx(100 / res.total_seconds)

    def test_stage_cycles_collected(self):
        launcher = KernelLauncher(get_device("v100"))
        res = launcher.launch(_toy_kernel, num_queries=4)
        assert set(res.stage_cycles) == {"locate", "distance", "maintain"}

    def test_global_bytes_accumulated(self):
        launcher = KernelLauncher(get_device("v100"))
        res = launcher.launch(_toy_kernel, num_queries=4)
        assert res.total_global_bytes == 4 * 512

    def test_multi_query_groups_warps(self):
        launcher = KernelLauncher(get_device("v100"))
        r1 = launcher.launch(_toy_kernel, num_queries=8, queries_per_warp=1)
        r2 = launcher.launch(_toy_kernel, num_queries=8, queries_per_warp=4)
        # Same total work, but r2 has 2 warps instead of 8.
        assert sum(r1.stage_cycles.values()) == pytest.approx(
            sum(r2.stage_cycles.values())
        )

    def test_invalid_args(self):
        launcher = KernelLauncher(get_device("v100"))
        with pytest.raises(ValueError):
            launcher.launch(_toy_kernel, num_queries=0)
        with pytest.raises(ValueError):
            launcher.launch(_toy_kernel, num_queries=4, queries_per_warp=0)

    def test_occupancy_reported(self):
        launcher = KernelLauncher(get_device("v100"))
        res = launcher.launch(
            _toy_kernel, num_queries=4, shared_bytes_per_warp=24 * 1024
        )
        assert res.occupancy_warps_per_sm == 4

    def test_bigger_batches_amortize_transfer(self):
        launcher = KernelLauncher(get_device("v100"))
        small = launcher.launch(_toy_kernel, num_queries=10, htod_bytes=10 * 512)
        big = launcher.launch(_toy_kernel, num_queries=1000, htod_bytes=1000 * 512)
        assert big.qps(1000) > small.qps(10)


class TestProfiler:
    def test_breakdowns_sum_to_one(self):
        launcher = KernelLauncher(get_device("v100"))
        prof = StageProfiler()
        launcher.launch(
            _toy_kernel, num_queries=6, htod_bytes=1024, dtoh_bytes=128, profiler=prof
        )
        tb = prof.transfer_breakdown()
        assert sum(tb.values()) == pytest.approx(1.0)
        kb = prof.kernel_breakdown()
        assert sum(kb.values()) == pytest.approx(1.0)

    def test_empty_profiler_safe(self):
        prof = StageProfiler()
        assert prof.transfer_breakdown() == {"HtoD": 0.0, "Kernel": 0.0, "DtoH": 0.0}
        assert sum(prof.kernel_breakdown().values()) == 0.0

    def test_reset(self):
        prof = StageProfiler()
        prof.add_kernel(1.0)
        prof.add_stage_cycles({"locate": 5.0})
        prof.reset()
        assert prof.total_seconds == 0.0
        assert prof.stage_cycles == {}

    def test_accumulates_over_launches(self):
        launcher = KernelLauncher(get_device("v100"))
        prof = StageProfiler()
        launcher.launch(_toy_kernel, num_queries=3, profiler=prof)
        first = prof.kernel_seconds
        launcher.launch(_toy_kernel, num_queries=3, profiler=prof)
        assert prof.kernel_seconds == pytest.approx(2 * first)
