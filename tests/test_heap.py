"""Binary heap tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.heap import MaxHeap, MinHeap, TopKMaxHeap

entries = st.lists(
    st.tuples(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=10**6),
    ),
    max_size=200,
)


class TestMinHeap:
    def test_pop_orders_ascending(self):
        h = MinHeap()
        for d, v in [(3.0, 1), (1.0, 2), (2.0, 3)]:
            h.push(d, v)
        assert h.pop() == (1.0, 2)
        assert h.pop() == (2.0, 3)
        assert h.pop() == (3.0, 1)

    def test_peek_does_not_remove(self):
        h = MinHeap()
        h.push(5.0, 1)
        assert h.peek() == (5.0, 1)
        assert len(h) == 1

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            MinHeap().pop()
        with pytest.raises(IndexError):
            MinHeap().peek()

    def test_tie_break_on_vertex(self):
        h = MinHeap()
        h.push(1.0, 9)
        h.push(1.0, 2)
        assert h.pop() == (1.0, 2)

    @settings(max_examples=60, deadline=None)
    @given(items=entries)
    def test_heap_sort_matches_sorted(self, items):
        h = MinHeap()
        for d, v in items:
            h.push(d, v)
        drained = [h.pop() for _ in range(len(items))]
        assert drained == sorted(items)

    @settings(max_examples=30, deadline=None)
    @given(items=entries)
    def test_to_sorted_list_nondestructive(self, items):
        h = MinHeap()
        for d, v in items:
            h.push(d, v)
        assert h.to_sorted_list() == sorted(items)
        assert len(h) == len(items)


class TestMaxHeap:
    @settings(max_examples=60, deadline=None)
    @given(items=entries)
    def test_heap_sort_descending(self, items):
        h = MaxHeap()
        for d, v in items:
            h.push(d, v)
        drained = [h.pop() for _ in range(len(items))]
        assert drained == sorted(items, reverse=True)

    def test_to_sorted_list_descending(self):
        h = MaxHeap()
        for d, v in [(1.0, 1), (3.0, 3), (2.0, 2)]:
            h.push(d, v)
        assert h.to_sorted_list() == [(3.0, 3), (2.0, 2), (1.0, 1)]


class TestTopKMaxHeap:
    def test_keeps_k_smallest(self):
        h = TopKMaxHeap(3)
        for d in [5.0, 1.0, 4.0, 2.0, 3.0]:
            h.push_bounded(d, int(d))
        kept = sorted(h.to_sorted_list())
        assert [d for d, _ in kept] == [1.0, 2.0, 3.0]

    def test_eviction_return_values(self):
        h = TopKMaxHeap(2)
        assert h.push_bounded(1.0, 1) is None
        assert h.push_bounded(2.0, 2) is None
        # Better candidate displaces the worst.
        assert h.push_bounded(0.5, 3) == (2.0, 2)
        # Worse candidate bounces off.
        assert h.push_bounded(9.0, 4) == (9.0, 4)

    def test_worst_distance_semantics(self):
        h = TopKMaxHeap(2)
        assert h.worst_distance() == float("inf")
        h.push_bounded(1.0, 1)
        assert h.worst_distance() == float("inf")  # not yet full
        h.push_bounded(2.0, 2)
        assert h.worst_distance() == 2.0
        assert h.is_full()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKMaxHeap(0)

    @settings(max_examples=60, deadline=None)
    @given(items=entries, k=st.integers(min_value=1, max_value=20))
    def test_matches_sorted_prefix(self, items, k):
        h = TopKMaxHeap(k)
        for d, v in items:
            h.push_bounded(d, v)
        kept = sorted(h.to_sorted_list())
        assert kept == sorted(items)[: min(k, len(items))]
