"""Targeted tests for smaller code paths not covered elsewhere."""

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.gpu_kernel import GpuSongIndex
from repro.data.synthetic import _zipf_sizes
from repro.eval.report import _fmt
from repro.eval.sweep import _effective_queue_sizes
from repro.graphs._search import greedy_search
from repro.distances import get_metric
from repro.structures.visited import VisitedBackend


class TestEffectiveQueueSizes:
    def test_clamps_and_dedupes(self):
        assert _effective_queue_sizes([10, 20, 40], k=25) == [25, 40]

    def test_no_clamp_needed(self):
        assert _effective_queue_sizes([10, 20], k=5) == [10, 20]

    def test_all_below_k(self):
        assert _effective_queue_sizes([1, 2, 3], k=100) == [100]


class TestReportFormatting:
    def test_fmt_variants(self):
        assert _fmt(None) == "N/A"
        assert _fmt(0.0) == "0"
        assert _fmt(1234.5) == "1,234"  # round-half-even
        assert _fmt(3.14159) == "3.14"
        assert _fmt(0.001234) == "0.0012"
        assert _fmt("text") == "text"


class TestZipfSizes:
    def test_sums_to_n(self):
        rng = np.random.default_rng(0)
        sizes = _zipf_sizes(1000, 13, 1.2, rng)
        assert sizes.sum() == 1000

    def test_skew_orders_sizes(self):
        rng = np.random.default_rng(0)
        sizes = _zipf_sizes(1000, 10, 1.5, rng)
        assert sizes[0] == max(sizes)
        assert sizes[0] > 3 * sizes[-1]


class TestGreedySearchInternal:
    def test_ef_validation(self, small_dataset, small_graph):
        with pytest.raises(ValueError):
            greedy_search(
                small_dataset.data,
                small_graph.neighbors,
                small_dataset.queries[0],
                ef=0,
                entry_points=[0],
                metric=get_metric("l2"),
            )

    def test_duplicate_entry_points_deduped(self, small_dataset, small_graph):
        out = greedy_search(
            small_dataset.data,
            small_graph.neighbors,
            small_dataset.queries[0],
            ef=10,
            entry_points=[0, 0, 0],
            metric=get_metric("l2"),
        )
        ids = [v for _, v in out]
        assert len(ids) == len(set(ids))

    def test_returns_sorted(self, small_dataset, small_graph):
        out = greedy_search(
            small_dataset.data,
            small_graph.neighbors,
            small_dataset.queries[1],
            ef=15,
            entry_points=[small_graph.entry_point],
            metric=get_metric("l2"),
        )
        assert [d for d, _ in out] == sorted(d for d, _ in out)
        assert len(out) <= 15


class TestPlacementRules:
    def test_cuckoo_visited_in_shared(self, small_dataset, small_graph):
        """Probabilistic filters have fixed allocations -> shared memory."""
        idx = GpuSongIndex(small_graph, small_dataset.data)
        cfg = SearchConfig(
            k=10, queue_size=40, visited_backend=VisitedBackend.CUCKOO
        )
        assert idx.placement(cfg).visited_in_shared

    def test_shared_budget_scales_with_multi_query(self, small_dataset, small_graph):
        idx = GpuSongIndex(small_graph, small_dataset.data)
        p1 = idx.placement(SearchConfig(k=10, queue_size=40))
        p4 = idx.placement(SearchConfig(k=10, queue_size=40, multi_query=4))
        assert p4.shared_bytes_per_warp > p1.shared_bytes_per_warp


class TestDatasetMetricPlumbing:
    def test_ground_truth_respects_metric(self):
        from repro.data.datasets import Dataset

        rng = np.random.default_rng(3)
        data = rng.normal(size=(50, 4)).astype(np.float32)
        queries = rng.normal(size=(3, 4)).astype(np.float32)
        ds_l2 = Dataset("x", data, queries, metric="l2")
        ds_ip = Dataset("x", data, queries, metric="ip")
        gt_l2 = ds_l2.ground_truth(5)
        gt_ip = ds_ip.ground_truth(5)
        assert not np.array_equal(gt_l2, gt_ip)
        # ip ground truth = largest dot products
        dots = queries @ data.T
        np.testing.assert_array_equal(
            gt_ip[0], np.argsort(-dots[0], kind="stable")[:5]
        )


class TestProbeAccounting:
    def test_open_addressing_probe_counter(self):
        from repro.structures.hash_table import OpenAddressingSet

        s = OpenAddressingSet(16)
        before = s.probes
        s.insert(1)
        s.contains(1)
        assert s.probes > before

    def test_cuckoo_load_factor_range(self):
        from repro.structures.cuckoo import CuckooFilter

        f = CuckooFilter(100)
        assert f.load_factor() == 0.0
        for i in range(50):
            f.insert(i)
        assert 0.0 < f.load_factor() <= 1.0
