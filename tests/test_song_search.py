"""SONG 3-stage searcher: equivalence and optimization invariants."""

import numpy as np
import pytest

from repro.core.algorithm1 import algorithm1_search
from repro.core.config import OptimizationLevel, SearchConfig
from repro.core.song import SearchStats, SongSearcher
from repro.eval.recall import batch_recall
from repro.structures.visited import VisitedBackend


@pytest.fixture(scope="module")
def searcher(small_dataset, small_graph):
    return SongSearcher(small_graph, small_dataset.data)


def _recall(searcher, dataset, config, n_queries=15):
    gt = dataset.ground_truth(config.k)
    results = [searcher.search(q, config) for q in dataset.queries[:n_queries]]
    return batch_recall(results, gt[:n_queries])


class TestBaselineEquivalence:
    def test_matches_algorithm1_exactly(self, searcher, small_dataset, small_graph):
        """Bounded queue + exact visited set returns the same results as the
        reference Algorithm 1 (Observation 1)."""
        cfg = SearchConfig(
            k=10, queue_size=40, visited_backend=VisitedBackend.PYSET
        )
        for q in small_dataset.queries[:10]:
            song = searcher.search(q, cfg)
            ref = algorithm1_search(
                small_graph, small_dataset.data, q, 10, queue_size=40
            )
            assert [v for _, v in song] == [v for _, v in ref]

    def test_hashtable_matches_pyset(self, searcher, small_dataset):
        a = SearchConfig(k=10, queue_size=40, visited_backend=VisitedBackend.PYSET)
        b = SearchConfig(
            k=10, queue_size=40, visited_backend=VisitedBackend.HASH_TABLE
        )
        for q in small_dataset.queries[:10]:
            assert [v for _, v in searcher.search(q, a)] == [
                v for _, v in searcher.search(q, b)
            ]


class TestResultIntegrity:
    @pytest.mark.parametrize("level", list(OptimizationLevel))
    def test_no_duplicates_any_level(self, searcher, small_dataset, level):
        cfg = SearchConfig.from_level(level, k=10, queue_size=40)
        for q in small_dataset.queries[:8]:
            res = searcher.search(q, cfg)
            ids = [v for _, v in res]
            assert len(ids) == len(set(ids)), f"duplicates under {level}"

    @pytest.mark.parametrize("level", list(OptimizationLevel))
    def test_sorted_ascending(self, searcher, small_dataset, level):
        cfg = SearchConfig.from_level(level, k=10, queue_size=40)
        res = searcher.search(small_dataset.queries[0], cfg)
        ds = [d for d, _ in res]
        assert ds == sorted(ds)

    def test_distances_are_true_distances(self, searcher, small_dataset):
        cfg = SearchConfig(k=5, queue_size=30)
        q = small_dataset.queries[0]
        for d, v in searcher.search(q, cfg):
            true = float(((small_dataset.data[v] - q) ** 2).sum())
            assert d == pytest.approx(true, rel=1e-4)


class TestOptimizationRecall:
    def test_selected_insertion_recall_close_to_baseline(
        self, searcher, small_dataset
    ):
        base = SearchConfig(k=10, queue_size=60)
        sel = base.with_options(selected_insertion=True)
        assert _recall(searcher, small_dataset, sel) >= (
            _recall(searcher, small_dataset, base) - 0.05
        )

    def test_visited_deletion_recall_close_to_baseline(
        self, searcher, small_dataset
    ):
        base = SearchConfig(k=10, queue_size=60)
        sel_del = base.with_options(selected_insertion=True, visited_deletion=True)
        assert _recall(searcher, small_dataset, sel_del) >= (
            _recall(searcher, small_dataset, base) - 0.05
        )

    def test_bloom_recall_close_to_exact(self, searcher, small_dataset):
        base = SearchConfig(k=10, queue_size=60)
        bloom = SearchConfig(
            k=10, queue_size=60, visited_backend=VisitedBackend.BLOOM
        )
        assert _recall(searcher, small_dataset, bloom) >= (
            _recall(searcher, small_dataset, base) - 0.05
        )

    def test_recall_grows_with_queue_size(self, searcher, small_dataset):
        r_small = _recall(searcher, small_dataset, SearchConfig(k=10, queue_size=10))
        r_large = _recall(searcher, small_dataset, SearchConfig(k=10, queue_size=100))
        assert r_large >= r_small


class TestMemoryBehaviour:
    def test_visited_deletion_bounds_visited_size(self, searcher, small_dataset):
        """With sel+del the visited set stays within ~2×queue_size (q ∪ topk),
        far below the unbounded baseline."""
        qsize = 30
        base_cfg = SearchConfig(k=10, queue_size=qsize)
        del_cfg = base_cfg.with_options(
            selected_insertion=True, visited_deletion=True
        )
        for q in small_dataset.queries[:5]:
            s_base, s_del = SearchStats(), SearchStats()
            searcher.search(q, base_cfg, stats=s_base)
            searcher.search(q, del_cfg, stats=s_del)
            bound = 2 * qsize + searcher.graph.degree
            assert s_del.visited_peak <= bound
            assert s_del.visited_peak <= s_base.visited_peak

    def test_selected_insertion_reduces_inserts(self, searcher, small_dataset):
        base_cfg = SearchConfig(k=10, queue_size=30)
        sel_cfg = base_cfg.with_options(selected_insertion=True)
        total_base = total_sel = 0
        for q in small_dataset.queries[:10]:
            s1, s2 = SearchStats(), SearchStats()
            searcher.search(q, base_cfg, stats=s1)
            searcher.search(q, sel_cfg, stats=s2)
            total_base += s1.visited_inserts
            total_sel += s2.visited_inserts
        assert total_sel <= total_base

    def test_selected_insertion_may_recompute_distances(
        self, searcher, small_dataset
    ):
        """The computation-for-memory trade: sel can only *increase* the
        number of distance computations."""
        base_cfg = SearchConfig(k=10, queue_size=30)
        sel_cfg = base_cfg.with_options(selected_insertion=True)
        d_base = d_sel = 0
        for q in small_dataset.queries[:10]:
            s1, s2 = SearchStats(), SearchStats()
            searcher.search(q, base_cfg, stats=s1)
            searcher.search(q, sel_cfg, stats=s2)
            d_base += s1.distance_computations
            d_sel += s2.distance_computations
        assert d_sel >= d_base


class TestProbeAndUnbounded:
    def test_multi_step_probe_same_quality(self, searcher, small_dataset):
        base = SearchConfig(k=10, queue_size=60)
        probe = base.with_options(probe_steps=4)
        assert _recall(searcher, small_dataset, probe) >= (
            _recall(searcher, small_dataset, base) - 0.05
        )

    def test_multi_step_probe_computes_more(self, searcher, small_dataset):
        base = SearchConfig(k=10, queue_size=40)
        probe = base.with_options(probe_steps=4)
        d1 = d4 = 0
        for q in small_dataset.queries[:8]:
            s1, s4 = SearchStats(), SearchStats()
            searcher.search(q, base, stats=s1)
            searcher.search(q, probe, stats=s4)
            d1 += s1.distance_computations
            d4 += s4.distance_computations
        assert d4 >= d1

    def test_unbounded_queue_matches_bounded_results(
        self, searcher, small_dataset
    ):
        """Observation 1: bounding q at queue_size does not change results."""
        bounded = SearchConfig(
            k=10, queue_size=40, visited_backend=VisitedBackend.PYSET
        )
        unbounded = bounded.with_options(bounded_queue=False)
        for q in small_dataset.queries[:10]:
            rb = [v for _, v in searcher.search(q, bounded)]
            ru = [v for _, v in searcher.search(q, unbounded)]
            assert rb == ru


class TestValidation:
    def test_graph_data_mismatch(self, small_graph):
        with pytest.raises(ValueError, match="vertices"):
            SongSearcher(small_graph, np.zeros((3, 4), dtype=np.float32))

    def test_batch_api(self, searcher, small_dataset):
        cfg = SearchConfig(k=5, queue_size=20)
        out = searcher.search_batch(small_dataset.queries[:3], cfg)
        assert len(out) == 3
        assert all(len(r) == 5 for r in out)
