"""Call-graph tests: resolution rules, may-acquire fixpoint, spawn
boundaries, and coroutine identification."""

from repro.analysis.aio.callgraph import build_call_graph
from repro.analysis.aio.model import extract_module


def graph_of(*sources):
    return build_call_graph([extract_module(s) for s in sources])


SRC = """\
import asyncio

class A:
    def __init__(self):
        self._lock = asyncio.Lock()

    async def leaf(self):
        async with self._lock:
            pass

    async def mid(self):
        await self.leaf()

    async def top(self):
        await self.mid()

    def sync_helper(self):
        pass

async def free():
    pass
"""


class TestResolution:
    def test_function_table_qualnames(self):
        g = graph_of(SRC)
        assert "A.leaf" in g.functions
        assert "A.mid" in g.functions
        assert "free" in g.functions

    def test_self_call_resolves_exactly(self):
        g = graph_of(SRC)
        assert g.edges["A.mid"] == ["A.leaf"]

    def test_unknown_receiver_resolves_by_method_name(self):
        src = (
            "class B:\n"
            "    async def work(self):\n"
            "        pass\n"
            "async def driver(b):\n"
            "    await b.work()\n"
        )
        g = graph_of(src)
        assert g.edges["driver"] == ["B.work"]

    def test_is_coroutine(self):
        g = graph_of(SRC)
        assert g.is_coroutine("A.leaf")
        assert g.is_coroutine("free")
        assert not g.is_coroutine("A.sync_helper")
        assert not g.is_coroutine("unknown_name")

    def test_ambiguous_method_coroutine_requires_all_async(self):
        src = (
            "class X:\n"
            "    async def go(self):\n"
            "        pass\n"
            "class Y:\n"
            "    def go(self):\n"
            "        pass\n"
        )
        g = graph_of(src)
        # ?.go may be X.go (async) or Y.go (sync): not definitely a coroutine.
        assert not g.is_coroutine("?.go")


class TestMayAcquire:
    def test_direct_acquisition(self):
        g = graph_of(SRC)
        assert ("A._lock", "lock", "x") in g.may_acquire["A.leaf"]

    def test_transitive_through_two_levels(self):
        g = graph_of(SRC)
        assert ("A._lock", "lock", "x") in g.may_acquire["A.top"]

    def test_spawn_does_not_propagate(self):
        src = (
            "import asyncio\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self._lock = asyncio.Lock()\n"
            "    async def leaf(self):\n"
            "        async with self._lock:\n"
            "            pass\n"
            "    async def spawner(self):\n"
            "        t = asyncio.create_task(self.leaf())\n"
            "        await t\n"
        )
        g = graph_of(src)
        assert g.may_acquire["A.spawner"] == frozenset()

    def test_recursive_call_terminates(self):
        src = (
            "import asyncio\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self._lock = asyncio.Lock()\n"
            "    async def ping(self):\n"
            "        async with self._lock:\n"
            "            await self.pong()\n"
            "    async def pong(self):\n"
            "        await self.ping()\n"
        )
        g = graph_of(src)
        assert ("A._lock", "lock", "x") in g.may_acquire["A.pong"]

    def test_cross_module_linking(self):
        lib = (
            "import asyncio\n"
            "class Lib:\n"
            "    def __init__(self):\n"
            "        self._m = asyncio.Lock()\n"
            "    async def locked(self):\n"
            "        async with self._m:\n"
            "            pass\n"
        )
        app = "async def use(lib):\n    await lib.locked()\n"
        g = graph_of(lib, app)
        assert ("Lib._m", "lock", "x") in g.may_acquire["use"]
