"""Kernel-sanitizer tests: every hazard class on purpose-built broken
kernels, plus the clean bill of health for the real registry."""

import numpy as np
import pytest

from repro.analysis import (
    DriftExpectation,
    TraceRecorder,
    check_drift,
    iter_kernel_specs,
    sanitize_kernel,
    sanitize_program,
    sanitize_trace,
)
from repro.analysis.findings import Severity
from repro.simt import isa
from repro.simt.kernels import heap_push_kernel, run_heap_push, squared_l2_kernel
from repro.simt.simulator import WARP_SIZE, SMSimulator, WarpSimulator


def run_traced(program, regs=None, shared=None, global_mem=None):
    recorder = TraceRecorder()
    sim = WarpSimulator(
        program,
        global_mem=global_mem if global_mem is not None else np.zeros(64),
        shared_mem=shared,
        tracer=recorder,
    )
    for name, values in (regs or {}).items():
        sim.set_register(name, values)
    stats = sim.run()
    return sim, recorder, stats


def rules(findings):
    return {f.rule for f in findings}


class TestSharedRace:
    def test_intra_instruction_multi_lane_store(self):
        program = [
            isa.LaneId(dst="lane"),
            isa.Mov(dst="zero", src=0.0),
            isa.Sts(addr="zero", src="lane"),  # 32 lanes, one address
        ]
        _, rec, _ = run_traced(program, shared=np.zeros(32))
        findings = sanitize_trace(rec, shared_words=32)
        assert "shared-race" in rules(findings)

    def test_cross_lane_write_read_without_reconvergence(self):
        # Lane 0 stores word 0 in the then-branch; lanes 1..31 read it in
        # the else-branch *before* the EndIf reconverges them.
        program = [
            isa.LaneId(dst="lane"),
            isa.Cmp(rel="eq", dst="is0", a="lane", b=0.0),
            isa.Mov(dst="zero", src=0.0),
            isa.If(pred="is0"),
            isa.Sts(addr="zero", src="lane"),
            isa.Else(),
            isa.Lds(dst="peek", addr="zero"),
            isa.EndIf(),
        ]
        _, rec, _ = run_traced(program, shared=np.zeros(32))
        findings = sanitize_trace(rec, shared_words=32)
        race = [f for f in findings if f.rule == "shared-race"]
        assert race and "races with the write" in race[0].message

    def test_read_after_reconvergence_is_ordered(self):
        program = [
            isa.LaneId(dst="lane"),
            isa.Cmp(rel="eq", dst="is0", a="lane", b=0.0),
            isa.Mov(dst="zero", src=0.0),
            isa.If(pred="is0"),
            isa.Sts(addr="zero", src="lane"),
            isa.EndIf(),
            isa.Lds(dst="peek", addr="zero"),  # after reconvergence: fine
        ]
        _, rec, _ = run_traced(program, shared=np.zeros(32))
        assert sanitize_trace(rec, shared_words=32) == []

    def test_same_lane_rewrite_is_not_a_race(self):
        program = [
            isa.LaneId(dst="lane"),
            isa.Cmp(rel="eq", dst="is0", a="lane", b=0.0),
            isa.Mov(dst="zero", src=0.0),
            isa.If(pred="is0"),
            isa.Sts(addr="zero", src="lane"),
            isa.Lds(dst="back", addr="zero"),
            isa.Sts(addr="zero", src="back"),
            isa.EndIf(),
        ]
        _, rec, _ = run_traced(program, shared=np.zeros(32))
        assert sanitize_trace(rec, shared_words=32) == []


class TestOutOfBounds:
    def test_shared_store_past_declared_budget(self):
        program = [
            isa.LaneId(dst="lane"),
            isa.Cmp(rel="eq", dst="is0", a="lane", b=0.0),
            isa.If(pred="is0"),
            isa.Mov(dst="addr", src=40.0),
            isa.Sts(addr="addr", src=1.0),
            isa.EndIf(),
        ]
        # The array over-allocates (64 words) so execution is silent; the
        # declared budget of 32 words makes it a finding.
        _, rec, _ = run_traced(program, shared=np.zeros(64))
        findings = sanitize_trace(rec, shared_words=32)
        oob = [f for f in findings if f.rule == "shared-oob"]
        assert oob and oob[0].severity is Severity.ERROR
        assert "[40]" in oob[0].message

    def test_global_read_out_of_allocation(self):
        program = [
            isa.LaneId(dst="lane"),
            isa.Binary(op="add", dst="addr", a="lane", b=100.0),
            isa.Ldg(dst="v", addr="addr"),
        ]
        _, rec, _ = run_traced(program, global_mem=np.zeros(256))
        findings = sanitize_trace(rec, global_words=64)
        assert "global-oob" in rules(findings)

    def test_in_bounds_is_clean(self):
        program = [
            isa.LaneId(dst="lane"),
            isa.Ldg(dst="v", addr="lane"),
        ]
        _, rec, _ = run_traced(program, global_mem=np.zeros(32))
        assert sanitize_trace(rec, global_words=32) == []


class TestUninitializedRead:
    def test_partial_mask_write_then_full_mask_read(self):
        program = [
            isa.LaneId(dst="lane"),
            isa.Cmp(rel="eq", dst="is0", a="lane", b=0.0),
            isa.If(pred="is0"),
            isa.Mov(dst="x", src=1.0),
            isa.EndIf(),
            isa.Binary(op="add", dst="y", a="x", b=1.0),  # lanes 1..31 read junk
        ]
        _, rec, _ = run_traced(program)
        uninit = [f for f in sanitize_trace(rec) if f.rule == "uninit-read"]
        assert uninit and "'x'" in uninit[0].message
        assert "lanes" in uninit[0].message

    def test_shuffle_reads_lanes_that_never_wrote(self):
        # Lanes 0..15 write src; a full-warp ShflDown(16) reads 16..31.
        program = [
            isa.LaneId(dst="lane"),
            isa.Cmp(rel="lt", dst="lo", a="lane", b=16.0),
            isa.If(pred="lo"),
            isa.Mov(dst="src", src=5.0),
            isa.EndIf(),
            isa.ShflDown(dst="tmp", src="src", delta=16),
        ]
        _, rec, _ = run_traced(program)
        uninit = [f for f in sanitize_trace(rec) if f.rule == "uninit-read"]
        assert uninit and "ShflDown" in uninit[0].message

    def test_set_register_initializes_all_lanes(self):
        program = [isa.Binary(op="add", dst="y", a="x", b=1.0)]
        _, rec, _ = run_traced(program, regs={"x": 3.0})
        assert sanitize_trace(rec) == []


class TestDivergenceHygiene:
    def test_shuffle_under_partial_mask(self):
        program = [
            isa.LaneId(dst="lane"),
            isa.Cmp(rel="eq", dst="is0", a="lane", b=0.0),
            isa.Mov(dst="val", src=3.0),
            isa.If(pred="is0"),
            isa.ShflDown(dst="tmp", src="val", delta=16),
            isa.EndIf(),
        ]
        _, rec, _ = run_traced(program)
        findings = [f for f in sanitize_trace(rec) if f.rule == "divergent-shuffle"]
        assert findings and findings[0].severity is Severity.ERROR

    def test_stale_loop_predicate_is_static(self):
        program = [
            isa.Mov(dst="go", src=1.0),
            isa.While(pred="go"),
            isa.Mov(dst="x", src=2.0),  # never writes `go`
            isa.EndWhile(),
        ]
        findings = sanitize_program(program)
        assert rules(findings) == {"stale-loop-predicate"}

    def test_loop_that_updates_predicate_is_clean(self):
        assert sanitize_program(squared_l2_kernel(64)) == []

    def test_empty_mask_issue_from_synthetic_trace(self):
        rec = TraceRecorder()
        rec.on_instruction(0, isa.Mov(dst="x", src=1.0), np.zeros(WARP_SIZE, dtype=bool))
        assert "empty-mask-issue" in rules(sanitize_trace(rec))


class TestCoalescingAndConflicts:
    def test_scattered_global_read_warns(self):
        program = [
            isa.LaneId(dst="lane"),
            isa.Binary(op="mul", dst="addr", a="lane", b=32.0),
            isa.Ldg(dst="v", addr="addr"),
        ]
        _, rec, _ = run_traced(program, global_mem=np.zeros(1024))
        warns = [f for f in sanitize_trace(rec) if f.rule == "uncoalesced-global"]
        assert warns and warns[0].severity is Severity.WARNING

    def test_bank_conflicted_shared_read_warns(self):
        program = [
            isa.LaneId(dst="lane"),
            isa.Binary(op="mul", dst="addr", a="lane", b=32.0),  # all bank 0
            isa.Lds(dst="v", addr="addr"),
        ]
        _, rec, _ = run_traced(program, shared=np.zeros(1024))
        warns = [f for f in sanitize_trace(rec, shared_words=1024)
                 if f.rule == "bank-conflict"]
        assert warns and "32" in warns[0].message


class TestModelDrift:
    def test_transaction_mismatch_fires(self):
        _, rec, stats = run_traced(
            squared_l2_kernel(64),
            regs={"query_base": 0.0, "vec_base": 0.0},
            shared=np.zeros(64),
            global_mem=np.zeros(64),
        )
        wrong = DriftExpectation(global_transactions=stats.global_transactions + 1)
        assert "model-drift" in rules(check_drift(stats, rec, wrong))

    def test_shuffle_count_mismatch_fires(self):
        _, rec, stats = run_traced(
            squared_l2_kernel(64),
            regs={"query_base": 0.0, "vec_base": 0.0},
            shared=np.zeros(64),
            global_mem=np.zeros(64),
        )
        wrong = DriftExpectation(shfl_count=4)  # warp_reduce issues 5
        findings = check_drift(stats, rec, wrong)
        assert any("ShflDown" in f.message for f in findings)

    def test_matching_expectation_is_clean(self):
        _, rec, stats = run_traced(
            squared_l2_kernel(64),
            regs={"query_base": 0.0, "vec_base": 0.0},
            shared=np.zeros(64),
            global_mem=np.zeros(64),
        )
        ok = DriftExpectation(global_transactions=2, shfl_count=5)
        assert check_drift(stats, rec, ok) == []


@pytest.mark.parametrize("spec", iter_kernel_specs(), ids=lambda s: s.name)
def test_registry_kernel_is_clean(spec):
    """Every registered microkernel runs clean under the sanitizer."""
    assert sanitize_kernel(spec) == []


class TestHeapPushRegression:
    """The capacity guard the sanitizer forced into ``heap_push_kernel``."""

    @staticmethod
    def _unguarded():
        """The pre-fix kernel: push gated on lane 0 only, not capacity."""
        program = heap_push_kernel()
        idx = next(
            i for i, ins in enumerate(program)
            if isinstance(ins, isa.If) and ins.pred == "do_push"
        )
        return program[:idx] + [isa.If(pred="is0")] + program[idx + 1:]

    def _run(self, program, size, capacity):
        recorder = TraceRecorder()
        shared = np.zeros(2 * capacity + WARP_SIZE)
        shared[:size] = np.linspace(0.5, 3.0, size)
        shared[capacity : capacity + size] = np.arange(size, dtype=np.float64)
        sim = WarpSimulator(
            program, global_mem=np.zeros(8), shared_mem=shared, tracer=recorder
        )
        sim.set_register("heap_base", 0.0)
        sim.set_register("heap_capacity", float(capacity))
        sim.set_register("heap_size", float(size))
        sim.set_register("new_dist", 0.25)
        sim.set_register("new_id", 99.0)
        sim.run()
        return sim, recorder

    def test_sanitizer_flags_unguarded_push_at_capacity(self):
        _, rec = self._run(self._unguarded(), size=16, capacity=16)
        findings = sanitize_trace(rec, shared_words=2 * 16)
        oob = [f for f in findings if f.rule == "shared-oob"]
        assert oob, "unguarded full-heap push must write past the budget"
        assert any("[32]" in f.message for f in oob)

    def test_fixed_kernel_is_clean_at_capacity(self):
        _, rec = self._run(heap_push_kernel(), size=16, capacity=16)
        assert sanitize_trace(rec, shared_words=2 * 16) == []

    def test_full_heap_push_is_a_noop(self):
        dists = np.sort(np.linspace(0.5, 3.0, 8))
        ids = np.arange(8, dtype=np.float64)
        out_d, out_i, new_size, _ = run_heap_push(
            dists, ids, size=8, new_dist=0.25, new_id=99, capacity=8
        )
        assert new_size == 8
        np.testing.assert_array_equal(out_d, dists)
        assert 99 not in out_i

    def test_non_full_push_still_works(self):
        dists = np.sort(np.linspace(0.5, 3.0, 5))
        ids = np.arange(5, dtype=np.float64)
        out_d, out_i, new_size, _ = run_heap_push(
            dists, ids, size=5, new_dist=0.25, new_id=99, capacity=8
        )
        assert new_size == 6
        assert out_d[0] == pytest.approx(0.25)
        assert out_i[0] == 99


class TestSMComposition:
    def test_per_warp_recorders_under_sm_interleaving(self):
        racy = [
            isa.LaneId(dst="lane"),
            isa.Mov(dst="zero", src=0.0),
            isa.Sts(addr="zero", src="lane"),
        ]
        clean = [
            isa.LaneId(dst="lane"),
            isa.Sts(addr="lane", src="lane"),
        ]
        recorders = [TraceRecorder(), TraceRecorder()]
        warps = [
            WarpSimulator(racy, np.zeros(8), np.zeros(32), tracer=recorders[0]),
            WarpSimulator(clean, np.zeros(8), np.zeros(32), tracer=recorders[1]),
        ]
        SMSimulator(warps).run()
        assert "shared-race" in rules(sanitize_trace(recorders[0], shared_words=32))
        assert sanitize_trace(recorders[1], shared_words=32) == []
