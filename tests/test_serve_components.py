"""Unit tests for the serving building blocks: metrics, batching, admission."""

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    BatchObservation,
    default_tiers,
)
from repro.serve.batcher import BatchPolicy, BatchSizeController
from repro.serve.loadgen import poisson_arrivals
from repro.serve.metrics import LatencyHistogram, ServeMetrics


class TestLatencyHistogram:
    def test_percentiles_within_bucket_error(self):
        rng = np.random.default_rng(0)
        samples = rng.lognormal(mean=-7.0, sigma=1.0, size=5000)
        hist = LatencyHistogram()
        hist.observe_many(samples)
        for p in (50, 90, 99):
            exact = float(np.percentile(samples, p))
            approx = hist.percentile(p)
            # bucket ratio is 2**0.25 (~19%); allow one full bucket
            assert abs(approx - exact) / exact < 0.2

    def test_exact_aggregates(self):
        hist = LatencyHistogram()
        hist.observe(0.5)
        hist.observe_many(np.array([0.1, 0.2]))
        assert hist.count == 3
        assert hist.total == pytest.approx(0.8)
        assert hist.min == pytest.approx(0.1)
        assert hist.max == pytest.approx(0.5)
        assert hist.mean == pytest.approx(0.8 / 3)

    def test_percentile_clamped_to_observed_range(self):
        hist = LatencyHistogram()
        hist.observe(0.003)
        assert hist.percentile(50) == pytest.approx(0.003)
        assert hist.percentile(99) == pytest.approx(0.003)

    def test_rejects_bad_input(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.observe(-1.0)
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        assert hist.percentile(99) == 0.0  # empty histogram

    def test_to_dict_is_json_shaped(self):
        hist = LatencyHistogram()
        hist.observe_many(np.array([1e-4, 2e-4, 3e-4]))
        d = hist.to_dict()
        assert d["count"] == 3
        assert set(d) == {
            "count", "mean_s", "min_s", "max_s", "p50_s", "p90_s", "p99_s"
        }


class TestServeMetrics:
    def test_counter_flow(self):
        m = ServeMetrics()
        m.on_arrival(0)
        m.on_admit()
        m.on_batch(1, 0)
        m.on_complete("search", 0, 0.001, 0.002, recall=0.9)
        m.on_arrival(5)
        m.on_shed("queue_full")
        assert m.counters["arrived"] == 2
        assert m.counters["completed"] == 1
        assert m.shed_rate() == pytest.approx(0.5)
        assert m.shed_reasons == {"queue_full": 1}

    def test_recall_by_tier(self):
        m = ServeMetrics()
        m.on_complete("search", 0, 0.0, 0.0, recall=1.0)
        m.on_complete("search", 0, 0.0, 0.0, recall=0.8)
        m.on_complete("search", 2, 0.0, 0.0, recall=0.5)
        assert m.recall_by_tier() == {0: pytest.approx(0.9), 2: pytest.approx(0.5)}
        assert m.overall_recall() == pytest.approx((1.0 + 0.8 + 0.5) / 3)
        assert m.counters["degraded"] == 1

    def test_to_dict_deterministic(self):
        def build():
            m = ServeMetrics()
            m.on_arrival(3)
            m.on_batch(4, 1)
            m.on_complete("search", 1, 0.001, 0.004, recall=0.7)
            return m.to_dict()

        assert build() == build()
        d = build()
        assert d["batch_size"]["distribution"] == {"4": 1}
        assert d["tiers"] == {"1": 1}


class TestDefaultTiers:
    def test_halving_down_to_k(self):
        tiers = default_tiers(SearchConfig(k=10, queue_size=80), num_tiers=5)
        assert [t.queue_size for t in tiers] == [80, 40, 20, 10]
        assert all(t.k == 10 for t in tiers)

    def test_single_tier_when_base_is_minimal(self):
        tiers = default_tiers(SearchConfig(k=10, queue_size=10))
        assert [t.queue_size for t in tiers] == [10]


class TestAdmissionController:
    def make(self, policy="degrade", **kw):
        cfg = AdmissionConfig(policy=policy, slo_p99_s=0.01, max_queue=4, **kw)
        return AdmissionController(cfg, default_tiers(SearchConfig(k=5, queue_size=40)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(policy="nope")
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue=0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_p99_s=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(recover_fraction=0.0)

    def test_tier_degrades_under_estimated_overload(self):
        ctl = self.make()
        # a slow batch with a deep residual queue: estimate >> SLO
        ctl.observe_batch(BatchObservation(8, 0.02, queue_depth_after=50, tier=0))
        assert ctl.tier == 1
        assert ctl.current_config().queue_size == 20

    def test_tier_recovers_after_cooldown(self):
        ctl = self.make(cooldown_batches=2)
        ctl.observe_batch(BatchObservation(8, 0.02, queue_depth_after=50, tier=0))
        assert ctl.tier == 1
        for _ in range(2):
            ctl.observe_batch(BatchObservation(8, 1e-5, queue_depth_after=0, tier=1))
        # EWMA needs a few calm batches to decay below recover_fraction
        for _ in range(10):
            if ctl.tier == 0:
                break
            ctl.observe_batch(BatchObservation(8, 1e-5, queue_depth_after=0, tier=1))
        assert ctl.tier == 0

    def test_recovery_requires_consecutive_calm(self):
        ctl = self.make(cooldown_batches=3)
        ctl.tier = 1
        ctl.observe_batch(BatchObservation(8, 1e-6, queue_depth_after=0, tier=1))
        ctl.observe_batch(BatchObservation(8, 1e-6, queue_depth_after=0, tier=1))
        assert ctl.tier == 1  # two calm < cooldown of three
        ctl.observe_batch(BatchObservation(8, 1e-6, queue_depth_after=0, tier=1))
        assert ctl.tier == 0

    def test_reject_policy_never_degrades(self):
        ctl = self.make(policy="reject")
        ctl.observe_batch(BatchObservation(8, 0.5, queue_depth_after=500, tier=0))
        assert ctl.tier == 0

    def test_shed_deadline_default(self):
        assert self.make().shed_deadline_s() == pytest.approx(0.02)
        assert self.make(policy="reject").shed_deadline_s() is None
        assert self.make(shed_deadline_s=0.5).shed_deadline_s() == pytest.approx(0.5)

    def test_estimate_before_observation_is_zero(self):
        assert self.make().estimated_latency_s(100) == 0.0


class TestBatchSizeController:
    def make(self, mode="adaptive", **kw):
        return BatchSizeController(
            BatchPolicy(mode=mode, batch_size=8, max_batch=64, **kw), slo_p99_s=0.01
        )

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(mode="nope")
        with pytest.raises(ValueError):
            BatchPolicy(batch_size=0)
        with pytest.raises(ValueError):
            BatchPolicy(min_batch=16, batch_size=8)
        with pytest.raises(ValueError):
            BatchPolicy(service_slo_fraction=1.5)

    def test_grows_under_backlog(self):
        ctl = self.make()
        ctl.observe(8, service_seconds=1e-4, queue_depth_after=100)
        assert ctl.target == 16
        ctl.observe(16, service_seconds=1e-4, queue_depth_after=100)
        assert ctl.target == 32

    def test_growth_capped(self):
        ctl = self.make()
        for _ in range(10):
            ctl.observe(ctl.target, 1e-4, queue_depth_after=1000)
        assert ctl.target == 64

    def test_shrinks_when_service_eats_budget(self):
        ctl = self.make()
        # budget = 0.5 * 10ms = 5ms; 20ms service forces a shrink
        ctl.observe(8, service_seconds=0.02, queue_depth_after=100)
        assert ctl.target == 6

    def test_decays_when_idle(self):
        ctl = self.make()
        ctl.observe(8, service_seconds=1e-5, queue_depth_after=0)
        assert ctl.target == 7

    def test_fixed_mode_never_moves(self):
        ctl = self.make(mode="fixed")
        ctl.observe(8, 0.02, 100)
        ctl.observe(8, 1e-6, 0)
        assert ctl.target == 8


class TestPoissonArrivals:
    def test_seeded_and_increasing(self):
        a = poisson_arrivals(1000.0, 500, seed=7)
        b = poisson_arrivals(1000.0, 500, seed=7)
        np.testing.assert_array_equal(a, b)
        assert (np.diff(a) > 0).all()

    def test_rate_roughly_honored(self):
        a = poisson_arrivals(2000.0, 4000, seed=0)
        achieved = len(a) / a[-1]
        assert achieved == pytest.approx(2000.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10)
        with pytest.raises(ValueError):
            poisson_arrivals(100.0, 0)
