"""CLI and engine-registry tests for the aio analyzer plus the unified
--engines selector and consolidated baseline."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.__main__ import ENGINE_NAMES, main, run_engines
from repro.analysis.aio import check_aio, default_paths
from repro.analysis.baseline import apply_baseline, load_baseline_sections
from repro.analysis.findings import Finding, Severity

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_cli(*args):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


class TestAioEngine:
    def test_serve_is_clean_under_strict(self):
        findings = check_aio()
        assert findings == [], [f.format() for f in findings]

    def test_default_paths_cover_serve_and_streams(self):
        paths = [str(p) for p in default_paths()]
        assert any(p.endswith("serve/batcher.py") for p in paths)
        assert any(p.endswith("serve/router.py") for p in paths)
        assert any(p.endswith("simt/streams.py") for p in paths)

    def test_known_bad_fails(self):
        findings = check_aio(include_known_bad=True)
        assert any(f.severity is Severity.ERROR for f in findings)

    def test_aio_only_flag_exits_zero(self):
        assert main(["--aio-only", "--strict"]) == 0

    def test_aio_only_known_bad_exits_one(self, capsys):
        assert main(["--aio-only", "--strict", "--include-known-bad"]) == 1
        out = capsys.readouterr().out
        assert "[aio-atomicity]" in out
        assert "[aio-lock-order]" in out
        assert "[aio-wall-clock]" in out


class TestEnginesSelector:
    def test_engines_aio_equals_aio_only(self, capsys):
        assert main(["--engines", "aio", "--strict"]) == 0
        capsys.readouterr()

    def test_engines_rejects_unknown_name(self, capsys):
        with pytest.raises(SystemExit):
            main(["--engines", "nonsense"])
        capsys.readouterr()

    def test_engines_overrides_only_flags_conflict(self):
        # --engines composes with --strict; the --*-only group is separate.
        proc = run_cli("--engines", "sanitizer,aio", "--strict")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_run_engines_rejects_unknown(self):
        with pytest.raises(ValueError):
            run_engines(["bogus"])

    def test_engine_names_constant(self):
        assert ENGINE_NAMES == (
            "sanitizer", "lint", "verifier", "streams", "arrays", "aio",
        )

    def test_findings_are_engine_stamped(self):
        _, code = run_engines(["aio"], include_known_bad=True)
        assert code == 1
        findings, _ = run_engines(["aio"], include_known_bad=True)
        assert findings and all(f.engine == "aio" for f in findings)

    def test_timings_recorded_per_engine(self):
        timings = {}
        run_engines(["aio", "sanitizer"], timings=timings)
        assert set(timings) == {"aio", "sanitizer"}
        assert all(t >= 0.0 for t in timings.values())

    def test_text_report_includes_timings(self, capsys):
        assert main(["--engines", "aio"]) == 0
        out = capsys.readouterr().out
        assert "aio=" in out and "s]" in out


class TestConsolidatedBaseline:
    def test_legacy_flat_schema_applies_to_all_engines(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"suppress": [{"rule": "r", "location": "x.py:1"}]}))
        sections = load_baseline_sections(path)
        f = Finding("r", Severity.ERROR, "src/x.py:1", "m")
        assert apply_baseline([f], sections, "aio") == []
        assert apply_baseline([f], sections, "arrays") == []

    def test_per_engine_sections_scope(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(
            json.dumps(
                {"engines": {"aio": {"suppress": [{"rule": "r", "location": "x.py:1"}]}}}
            )
        )
        sections = load_baseline_sections(path)
        f = Finding("r", Severity.ERROR, "src/x.py:1", "m")
        assert apply_baseline([f], sections, "aio") == []
        kept = apply_baseline([f], sections, "arrays")
        assert [k.rule for k in kept] == ["r"]

    def test_stale_entry_surfaces_warning(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(
            json.dumps(
                {"engines": {"aio": {"suppress": [{"rule": "gone", "location": "y.py:9"}]}}}
            )
        )
        sections = load_baseline_sections(path)
        out = apply_baseline([], sections, "aio")
        assert [f.rule for f in out] == ["stale-baseline"]
        assert out[0].engine == "aio"

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"engines": {"aio": {"suppress": [{"rule": "r"}]}}}))
        with pytest.raises(ValueError):
            load_baseline_sections(path)

    def test_committed_baseline_has_all_engine_sections(self):
        sections = load_baseline_sections(
            REPO_ROOT / "scripts" / "analysis_baseline.json"
        )
        assert set(ENGINE_NAMES) <= set(sections)
        assert all(entries == [] for entries in sections.values())

    def test_baseline_suppresses_aio_finding_end_to_end(self, tmp_path):
        base = tmp_path / "base.json"
        # Suppress one specific known-bad finding and check it vanishes
        # from the JSON report while others stay.
        proc = run_cli("--engines", "aio", "--include-known-bad", "--json")
        records = [json.loads(l) for l in proc.stdout.splitlines() if l.strip()]
        target = next(r for r in records if r["rule"] == "aio-wall-clock")
        base.write_text(
            json.dumps(
                {
                    "engines": {
                        "aio": {
                            "suppress": [
                                {
                                    "rule": target["rule"],
                                    "location": target["location"],
                                }
                            ]
                        }
                    }
                }
            )
        )
        proc2 = run_cli(
            "--engines", "aio", "--include-known-bad", "--json",
            "--baseline", str(base),
        )
        records2 = [json.loads(l) for l in proc2.stdout.splitlines() if l.strip()]
        locs2 = {(r["rule"], r["location"]) for r in records2}
        assert (target["rule"], target["location"]) not in locs2
        assert any(r["rule"] == "aio-atomicity" for r in records2)


class TestCiWiring:
    def test_ci_gates_aio_strict_with_baseline(self):
        ci = (REPO_ROOT / "scripts" / "ci.sh").read_text()
        assert "--engines aio --strict" in ci
        assert "scripts/analysis_baseline.json" in ci

    def test_ci_has_aio_negative_control(self):
        ci = (REPO_ROOT / "scripts" / "ci.sh").read_text()
        assert "--aio-only --strict --include-known-bad" in ci

    def test_exact_ci_aio_gate_command_passes(self):
        proc = run_cli(
            "--engines", "aio", "--strict",
            "--baseline", "scripts/analysis_baseline.json",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_exact_ci_negative_control_fails(self):
        proc = run_cli("--aio-only", "--strict", "--include-known-bad")
        assert proc.returncode == 1
