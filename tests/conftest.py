"""Shared fixtures: small datasets and pre-built graphs.

Session-scoped so the graph constructions run once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_dataset
from repro.graphs import build_nsw


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_dataset():
    """A diffuse (SIFT-like) dataset small enough for exhaustive checks."""
    return make_dataset("sift", n=600, num_queries=20)


@pytest.fixture(scope="session")
def clustered_small_dataset():
    """A clustered (NYTimes-like) dataset."""
    return make_dataset("nytimes", n=600, num_queries=20)


@pytest.fixture(scope="session")
def small_graph(small_dataset):
    """NSW graph over the small dataset."""
    return build_nsw(small_dataset.data, m=8, ef_construction=40, seed=7)


@pytest.fixture(scope="session")
def clustered_graph(clustered_small_dataset):
    return build_nsw(clustered_small_dataset.data, m=8, ef_construction=40, seed=7)
