"""CLI tests for ``python -m repro.analysis``: exit codes, engine
selection, JSON output, and the --strict gate."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.__main__ import main, run_analysis

REPO_ROOT = Path(__file__).resolve().parent.parent

BAD_HOT_MODULE = (
    '"""Doc."""\n'
    "# lint: hot-path\n"
    "__all__ = []\n"
    "def f(n):\n"
    "    for i in range(n):\n"
    "        pass\n"
)


def run_cli(*args):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


class TestRunAnalysis:
    def test_repo_is_clean_under_strict(self):
        findings, code = run_analysis(strict=True)
        assert code == 0, [f.format() for f in findings]

    def test_seeded_lint_error_fails(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD_HOT_MODULE)
        findings, code = run_analysis(sanitize=False, lint_root=tmp_path)
        assert code == 1
        assert any(f.rule == "hot-loop" for f in findings)

    def test_warnings_fail_only_under_strict(self, tmp_path):
        (tmp_path / "warn.py").write_text("# lint: hot-path\n__all__ = []\n")
        _, lax = run_analysis(sanitize=False, lint_root=tmp_path)
        _, strict = run_analysis(strict=True, sanitize=False, lint_root=tmp_path)
        assert (lax, strict) == (0, 1)


class TestMainEntryPoint:
    def test_clean_run_exit_zero(self, capsys):
        assert main(["--strict"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "strict" in out

    def test_lint_only_on_seeded_tree(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD_HOT_MODULE)
        assert main(["--lint-only", "--lint-root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "[hot-loop]" in out and "FAIL" in out

    def test_sanitize_only_ignores_lint_tree(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD_HOT_MODULE)
        assert main(["--sanitize-only", "--lint-root", str(tmp_path)]) == 0

    def test_json_output_is_parseable(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD_HOT_MODULE)
        main(["--json", "--lint-only", "--lint-root", str(tmp_path)])
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        records = [json.loads(line) for line in lines]
        assert records and records[0]["rule"] == "hot-loop"
        assert set(records[0]) == {"rule", "severity", "location", "message"}


class TestModuleInvocation:
    """The exact commands scripts/ci.sh runs."""

    def test_python_dash_m_strict_exits_zero(self):
        proc = run_cli("--strict")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_ci_script_invokes_strict_analysis(self):
        ci = (REPO_ROOT / "scripts" / "ci.sh").read_text()
        assert "python -m repro.analysis --strict" in ci
        assert "ruff check" in ci
