"""CLI tests for ``python -m repro.analysis``: exit codes, engine
selection, JSON output, and the --strict gate."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.__main__ import main, run_analysis

REPO_ROOT = Path(__file__).resolve().parent.parent

BAD_HOT_MODULE = (
    '"""Doc."""\n'
    "# lint: hot-path\n"
    "__all__ = []\n"
    "def f(n):\n"
    "    for i in range(n):\n"
    "        pass\n"
)


def run_cli(*args):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


class TestRunAnalysis:
    def test_repo_is_clean_under_strict(self):
        findings, code = run_analysis(strict=True)
        assert code == 0, [f.format() for f in findings]

    def test_seeded_lint_error_fails(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD_HOT_MODULE)
        findings, code = run_analysis(sanitize=False, lint_root=tmp_path)
        assert code == 1
        assert any(f.rule == "hot-loop" for f in findings)

    def test_warnings_fail_only_under_strict(self, tmp_path):
        (tmp_path / "warn.py").write_text("# lint: hot-path\n__all__ = []\n")
        _, lax = run_analysis(sanitize=False, lint_root=tmp_path)
        _, strict = run_analysis(strict=True, sanitize=False, lint_root=tmp_path)
        assert (lax, strict) == (0, 1)


class TestMainEntryPoint:
    def test_clean_run_exit_zero(self, capsys):
        assert main(["--strict"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "strict" in out

    def test_lint_only_on_seeded_tree(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD_HOT_MODULE)
        assert main(["--lint-only", "--lint-root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "[hot-loop]" in out and "FAIL" in out

    def test_sanitize_only_ignores_lint_tree(self, tmp_path):
        (tmp_path / "bad.py").write_text(BAD_HOT_MODULE)
        assert main(["--sanitize-only", "--lint-root", str(tmp_path)]) == 0

    def test_json_output_is_parseable(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BAD_HOT_MODULE)
        main(["--json", "--lint-only", "--lint-root", str(tmp_path)])
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        records = [json.loads(line) for line in lines]
        assert records and records[0]["rule"] == "hot-loop"
        assert set(records[0]) == {
            "rule", "severity", "location", "message", "engine",
        }
        assert records[0]["engine"] == "lint"


class TestVerifyEngine:
    def test_verify_strict_on_registry_is_clean(self):
        findings, code = run_analysis(
            sanitize=False, lint=False, verify=True, strict=True
        )
        assert code == 0, [f.format() for f in findings]

    def test_known_bad_kernels_fail_the_gate(self):
        findings, code = run_analysis(
            sanitize=False,
            lint=False,
            verify=True,
            strict=True,
            include_known_bad=True,
        )
        assert code == 1
        got = {f.rule for f in findings}
        assert {"static-oob-shared", "static-divergent-shuffle"} <= got

    def test_findings_are_sorted_deterministically(self):
        findings, _ = run_analysis(
            sanitize=False,
            lint=False,
            verify=True,
            include_known_bad=True,
        )
        keys = [
            (f.severity.value != "error", f.location, f.rule, f.message)
            for f in findings
        ]
        assert keys == sorted(keys)

    def test_verify_json_schema_round_trips(self):
        proc = run_cli("--verify-only", "--include-known-bad", "--json")
        assert proc.returncode == 1
        records = [
            json.loads(line) for line in proc.stdout.splitlines() if line.strip()
        ]
        assert records
        for record in records:
            assert set(record) == {
                "rule", "severity", "location", "message", "engine",
            }
        locations = [r["location"] for r in records]
        assert locations == sorted(locations)  # all error-severity here

    def test_verify_json_is_byte_stable(self):
        first = run_cli("--verify-only", "--include-known-bad", "--json")
        second = run_cli("--verify-only", "--include-known-bad", "--json")
        assert first.stdout == second.stdout


class TestArraysEngine:
    def test_arrays_strict_on_registry_is_clean(self):
        findings, code = run_analysis(
            sanitize=False, lint=False, arrays=True, strict=True
        )
        assert code == 0, [f.format() for f in findings]

    def test_known_bad_array_kernels_fail_the_gate(self):
        findings, code = run_analysis(
            sanitize=False,
            lint=False,
            arrays=True,
            strict=True,
            include_known_bad=True,
        )
        assert code == 1
        got = {f.rule for f in findings}
        assert {
            "packed-key-overflow",
            "inplace-aliasing",
            "broadcast-mismatch",
            "fancy-index-oob",
            "nondet-sort",
        } <= got

    def test_arrays_only_cli_flag(self):
        proc = run_cli("--arrays-only", "--strict")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_arrays_baseline_flag(self):
        proc = run_cli(
            "--arrays-only",
            "--strict",
            "--baseline",
            "scripts/analysis_baseline.json",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


GOLDEN_SCHEMA = {
    "rule": str,
    "severity": str,
    "location": str,
    "message": str,
    "engine": str,
}

#: Rules every full --json run over the seeded inputs must mention, one
#: per seedable engine: verifier/stream rules come from the known-bad
#: fixtures, lint from a seeded tree, arrays from the known-bad array
#: kernels, aio from the known-bad coroutine fixtures.  The sanitizer
#: has no CLI-seedable bad input (its hazard traces live in
#: test_analysis_sanitizer.py); its golden expectation is the clean
#: empty run asserted separately below.
ENGINE_SENTINEL_RULES = {
    "verifier": "static-oob-shared",
    "streams": "stream-hazard",
    "lint": "hot-loop",
    "arrays": "packed-key-overflow",
    "aio": "aio-atomicity",
}


class TestGoldenJson:
    """Satellite: one schema-validated --json run covering all engines."""

    @pytest.fixture(scope="class")
    def golden(self, tmp_path_factory):
        lint_root = tmp_path_factory.mktemp("seeded")
        (lint_root / "bad.py").write_text(BAD_HOT_MODULE)
        proc = run_cli(
            "--json",
            "--strict",
            "--verify",
            "--arrays",
            "--aio",
            "--include-known-bad",
            "--lint-root",
            str(lint_root),
        )
        records = [
            json.loads(line)
            for line in proc.stdout.splitlines()
            if line.strip()
        ]
        return proc, records

    def test_every_record_matches_schema(self, golden):
        proc, records = golden
        assert records, proc.stderr
        for record in records:
            assert set(record) == set(GOLDEN_SCHEMA), record
            for key, typ in GOLDEN_SCHEMA.items():
                assert isinstance(record[key], typ), record
            assert record["severity"] in {"error", "warning"}
            assert record["location"], record

    def test_file_line_locations_are_well_formed(self, golden):
        # Engines that anchor to source (lint, arrays) emit file:line.
        _, records = golden
        anchored = [
            r
            for r in records
            if r["rule"] in {"hot-loop", *ENGINE_SENTINEL_RULES.values()}
            and ".py:" in r["location"]
        ]
        assert anchored
        for r in anchored:
            _, _, line = r["location"].rpartition(":")
            assert line.isdigit(), r["location"]

    def test_all_seedable_engines_report(self, golden):
        _, records = golden
        seen = {r["rule"] for r in records}
        for engine, rule in ENGINE_SENTINEL_RULES.items():
            assert rule in seen, (engine, sorted(seen))

    def test_sanitizer_golden_run_is_clean(self):
        proc = run_cli("--sanitize-only", "--strict", "--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert proc.stdout.strip() == ""

    def test_known_bad_inputs_fail_the_gate(self, golden):
        proc, _ = golden
        assert proc.returncode == 1

    def test_records_sorted_errors_first_then_location(self, golden):
        _, records = golden
        keys = [
            (
                r["severity"] != "error",
                r["location"],
                r["rule"],
                r["engine"],
                r["message"],
            )
            for r in records
        ]
        assert keys == sorted(keys)

    def test_every_record_carries_its_engine(self, golden):
        _, records = golden
        engines = {r["engine"] for r in records}
        assert engines <= {
            "sanitizer", "lint", "verifier", "streams", "arrays", "aio",
        }
        assert {"lint", "verifier", "streams", "arrays", "aio"} <= engines


class TestModuleInvocation:
    """The exact commands scripts/ci.sh runs."""

    def test_python_dash_m_strict_exits_zero(self):
        proc = run_cli("--strict")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_verify_strict_exits_zero(self):
        proc = run_cli("--verify-only", "--strict")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_ci_script_invokes_strict_analysis(self):
        ci = (REPO_ROOT / "scripts" / "ci.sh").read_text()
        assert "python -m repro.analysis --strict" in ci
        assert "ruff check" in ci

    def test_ci_script_gates_the_verifier(self):
        ci = (REPO_ROOT / "scripts" / "ci.sh").read_text()
        assert "--verify --strict" in ci
        # Negative control: CI runs the known-bad fixtures and requires
        # the gate to reject them, so a silently broken verifier fails CI.
        assert "--include-known-bad" in ci
