"""Out-of-core tier: stores, capacity ledger, cache, and the index."""

import warnings

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.gpu_kernel import GpuSongIndex
from repro.data import make_dataset
from repro.eval.recall import batch_recall
from repro.graphs import build_nsw
from repro.simt.device import get_device
from repro.simt.memory import CapacityLedger, DeviceMemoryExceeded
from repro.structures.soa import PAD_KEY
from repro.tiered import (
    BitCodeStore,
    PageCache,
    PQCodeStore,
    TieredConfig,
    TieredIndex,
    TieredServeEngine,
)
from repro.tiered.cache import rowids_to_pages
from repro.tiered.codes import _unpack_bits, make_store
from repro.tiered.index import rerank_sort_keys


@pytest.fixture(scope="module")
def small():
    ds = make_dataset("sift", n=400, num_queries=12, seed=0)
    graph = build_nsw(ds.data, m=6, ef_construction=32, seed=7)
    return ds, graph


class TestConfig:
    def test_defaults_valid(self):
        tier = TieredConfig()
        assert tier.codec == "bits"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(codec="zstd"),
            dict(num_bits=100),  # not a multiple of 32
            dict(num_bits=0),
            dict(overfetch=0),
            dict(page_rows=0),
            dict(cache_pages=-1),
            dict(codec="pq", pq_m=0),
            dict(codec="pq", pq_ksub=300),  # must fit uint8
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TieredConfig(**kwargs)

    def test_with_options(self):
        tier = TieredConfig().with_options(overfetch=9)
        assert tier.overfetch == 9 and tier.codec == "bits"


class TestStores:
    def test_bits_proxy_squared_l2_is_hamming(self, small):
        ds, _ = small
        store = BitCodeStore(ds.data[:50], TieredConfig(num_bits=64))
        proxy = store.traversal_data
        assert proxy.shape == (50, 64) and proxy.dtype == np.float32
        # Exact identity: squared L2 over 0/1 rows counts differing bits.
        for i, j in [(0, 1), (3, 17), (20, 49)]:
            sq_l2 = float(((proxy[i] - proxy[j]) ** 2).sum())
            hamming = sum(
                int(a ^ b).bit_count()
                for a, b in zip(store.codes[i].tolist(), store.codes[j].tolist())
            )
            assert sq_l2 == hamming

    def test_bits_query_encoding_matches_data_encoding(self, small):
        ds, _ = small
        store = BitCodeStore(ds.data[:50], TieredConfig(num_bits=64))
        # Encoding a data row as a query gives the same proxy row.
        np.testing.assert_array_equal(
            store.encode_queries(ds.data[:5]), store.traversal_data[:5]
        )

    def test_unpack_roundtrip(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 2**32, size=(7, 2), dtype=np.uint32)
        bits = _unpack_bits(codes, 64)
        packed = np.packbits(
            bits.astype(np.uint8), axis=1, bitorder="little"
        ).view(np.uint32)
        np.testing.assert_array_equal(packed, codes)

    def test_pq_proxy_is_decoded_rows(self, small):
        ds, _ = small
        tier = TieredConfig(codec="pq", pq_m=8, pq_ksub=16)
        store = PQCodeStore(ds.data[:80], tier)
        decoded = store.quantizer.decode(store.codes).astype(np.float32)
        np.testing.assert_array_equal(store.traversal_data, decoded)
        # ADC identity: L2(query, decoded) is the ADC distance, so the
        # query proxy is the raw query itself.
        np.testing.assert_array_equal(
            store.encode_queries(ds.queries[:3]),
            ds.queries[:3].astype(np.float32),
        )

    def test_cost_profile(self, small):
        ds, _ = small
        bits = BitCodeStore(ds.data[:40], TieredConfig(num_bits=96))
        assert bits.num_words == 3
        assert bits.cost_dim == 3
        assert bits.query_device_bytes == 12
        assert bits.flops_per_distance() == 9
        assert bits.device_code_bytes() == 40 * 3 * 4
        pq = PQCodeStore(ds.data[:40], TieredConfig(codec="pq", pq_m=8, pq_ksub=16))
        assert pq.cost_dim == 2
        assert pq.flops_per_distance() == 16
        assert pq.query_device_bytes == ds.data.shape[1] * 4

    def test_make_store_dispatch(self, small):
        ds, _ = small
        assert isinstance(make_store(ds.data[:20], TieredConfig()), BitCodeStore)
        assert isinstance(
            make_store(ds.data[:20], TieredConfig(codec="pq", pq_ksub=8)),
            PQCodeStore,
        )


class TestCapacityLedger:
    def _device(self, budget_bytes: int):
        return get_device("v100").with_overrides(
            memory_budget_gb=budget_bytes / float(1024**3)
        )

    def test_reserve_release_and_headroom(self):
        dev = self._device(1000)
        ledger = CapacityLedger(dev)
        ledger.reserve("a", 600)
        assert ledger.reserved_bytes == 600
        assert ledger.headroom_bytes == dev.memory_bytes - 600
        assert ledger.would_fit(dev.memory_bytes - 600)
        assert not ledger.would_fit(dev.memory_bytes)
        ledger.release("a")
        assert ledger.reserved_bytes == 0

    def test_overflow_raises_and_rolls_back(self):
        ledger = CapacityLedger(self._device(1000))
        ledger.reserve("index", 900)
        with pytest.raises(DeviceMemoryExceeded) as err:
            ledger.reserve("cache", ledger.budget_bytes)
        assert "index" in str(err.value)  # message lists reservations
        assert "cache" not in ledger.reservations  # rolled back

    def test_oversubscription_warns_instead(self):
        ledger = CapacityLedger(self._device(1000))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ledger.reserve(
                "big", ledger.budget_bytes + 1, allow_oversubscription=True
            )
        assert any(issubclass(w.category, ResourceWarning) for w in caught)
        assert "big" in ledger.reservations

    def test_gpu_index_enforces_budget(self, small):
        ds, graph = small
        dev = self._device(64 * 1024)  # far below data + graph
        with pytest.raises(DeviceMemoryExceeded):
            GpuSongIndex(graph, ds.data, device=dev)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            index = GpuSongIndex(
                graph, ds.data, device=dev, allow_oversubscription=True
            )
        assert any(issubclass(w.category, ResourceWarning) for w in caught)
        assert not index.fits_in_device_memory()

    def test_memory_budget_override(self):
        dev = get_device("v100")
        shrunk = dev.with_overrides(memory_budget_gb=0.5)
        assert shrunk.memory_bytes == int(0.5 * 1024**3)
        assert dev.memory_gb == dev.global_memory_gb


class TestPageCache:
    def test_lru_eviction_order(self):
        cache = PageCache(2)
        hits, missed = cache.touch_run(np.array([1, 2, 1]))
        assert hits == 1 and list(missed) == [1, 2]
        # Touch 1 (hit, moves to back), admit 3 → evicts 2, not 1.
        hits, missed = cache.touch_run(np.array([1, 3]))
        assert hits == 1 and list(missed) == [3]
        hits, missed = cache.touch_run(np.array([1, 2]))
        assert hits == 1 and list(missed) == [2]

    def test_zero_capacity_always_misses(self):
        cache = PageCache(0)
        hits, missed = cache.touch_run(np.array([5, 5, 5]))
        assert hits == 0 and list(missed) == [5, 5, 5]

    def test_counters_and_reset(self):
        cache = PageCache(4)
        cache.touch_run(np.array([1, 2, 1]))
        assert (cache.hits, cache.misses) == (1, 2)
        cache.reset()
        assert (cache.hits, cache.misses) == (0, 0)
        assert cache.touch_run(np.array([1]))[0] == 0  # cold again

    def test_rowids_to_pages(self):
        pages = rowids_to_pages(np.array([0, 15, 16, 100]), 16)
        np.testing.assert_array_equal(pages, [0, 0, 1, 6])
        assert pages.dtype == np.int64


class TestRerankKeys:
    def test_sorts_by_distance_then_id_with_padding(self):
        dists = np.array([[3.0, 1.0, 1.0, 9.0]], dtype=np.float32)
        ids = np.array([[7, 9, 2, 1]])
        valid = np.array([[True, True, True, False]])
        keys = rerank_sort_keys(dists, ids, valid)
        from repro.structures.soa import unpack_distances, unpack_ids

        assert keys[0, -1] == PAD_KEY  # invalid slot sorts last
        np.testing.assert_array_equal(unpack_ids(keys[:, :3])[0], [2, 9, 7])
        np.testing.assert_allclose(
            unpack_distances(keys[:, :3])[0], [1.0, 1.0, 3.0]
        )


class TestTieredIndex:
    TIER = TieredConfig(num_bits=256, overfetch=8, page_rows=16, cache_pages=2)

    def test_residency_accounting(self, small):
        ds, graph = small
        idx = TieredIndex(graph, ds.data, self.TIER)
        expected = (
            graph.memory_bytes()
            + idx.store.device_code_bytes()
            + min(self.TIER.cache_pages, idx.num_pages) * idx.page_bytes
        )
        assert idx.resident_bytes == expected
        assert idx.full_precision_bytes() == ds.data.nbytes + graph.memory_bytes()
        assert idx.compression_ratio() > 1.0

    def test_overfetch_panel_clamped_by_queue(self, small):
        ds, graph = small
        idx = TieredIndex(graph, ds.data, self.TIER)
        assert idx.overfetch_k(SearchConfig(k=10, queue_size=100)) == 80
        # The degradation ladder shrinks queue_size; the panel follows.
        assert idx.overfetch_k(SearchConfig(k=10, queue_size=32)) == 32
        assert idx.overfetch_k(SearchConfig(k=10, queue_size=10)) == 10

    def test_recall_within_floor_of_full_precision(self, small):
        ds, graph = small
        config = SearchConfig(k=10, queue_size=120)
        gt = ds.ground_truth(10)
        from repro.core.batched import BatchedSongSearcher

        full = BatchedSongSearcher(graph, ds.data).search_batch(
            ds.queries, config
        )
        full_recall = batch_recall(full, gt)
        tiered_recall = batch_recall(
            TieredIndex(graph, ds.data, self.TIER).search_batch(
                ds.queries, config
            ),
            gt,
        )
        assert full_recall > 0.9
        # Over-fetch + exact re-rank holds recall near the
        # full-precision searcher on the same graph.
        assert tiered_recall >= full_recall - 0.3

    def test_pq_codec_searches(self, small):
        ds, graph = small
        tier = TieredConfig(
            codec="pq", pq_m=16, pq_ksub=16, overfetch=8, page_rows=16
        )
        idx = TieredIndex(graph, ds.data, tier)
        results = idx.search_batch(ds.queries, SearchConfig(k=5, queue_size=80))
        assert len(results) == ds.num_queries
        assert all(len(r) == 5 for r in results)

    def test_rerank_distances_are_exact(self, small):
        ds, graph = small
        config = SearchConfig(k=5, queue_size=80)
        results = TieredIndex(graph, ds.data, self.TIER).search_batch(
            ds.queries, config
        )
        for q, res in zip(ds.queries, results):
            for dist, vertex in res:
                exact = float(((q - ds.data[vertex]) ** 2).sum())
                assert dist == pytest.approx(exact, rel=1e-5)

    def test_rerank_plan_pages_cover_candidates(self, small):
        ds, graph = small
        idx = TieredIndex(graph, ds.data, self.TIER)
        config = SearchConfig(k=5, queue_size=80)
        _, stats, plan = idx.search_batch_with_stats(ds.queries, config)
        assert len(stats) == ds.num_queries
        assert len(plan.page_lists) == ds.num_queries
        for pages, count in zip(plan.page_lists, plan.candidate_counts):
            assert count > 0
            # Ordered-unique: no duplicates, all within range.
            assert len(set(pages.tolist())) == len(pages)
            assert all(0 <= p < idx.num_pages for p in pages.tolist())


class TestPrefetchIdentity:
    def test_results_identical_prefetch_vs_serial(self, small):
        ds, graph = small
        tier = TieredConfig(num_bits=128, overfetch=8, page_rows=16, cache_pages=4)
        config = SearchConfig(k=10, queue_size=100)
        outs = {}
        for prefetch in (True, False):
            engine = TieredServeEngine(
                graph, ds.data, tier, prefetch=prefetch
            )
            outs[prefetch] = engine.run_batch(ds.queries, config)
        assert outs[True].results == outs[False].results
        # Staging only changes the clock: prefetch must be faster.
        assert outs[True].service_seconds < outs[False].service_seconds

    def test_results_invariant_to_chunking(self, small):
        ds, graph = small
        tier = TieredConfig(num_bits=128, overfetch=8, page_rows=16, cache_pages=4)
        config = SearchConfig(k=10, queue_size=100)
        engine = TieredServeEngine(graph, ds.data, tier)
        r1, chunks1, d1 = engine.chunked_batch(ds.queries, config, num_chunks=1)
        engine.cache.reset()
        r4, chunks4, d4 = engine.chunked_batch(ds.queries, config, num_chunks=4)
        assert r1 == r4
        assert len(chunks1) == 1 and len(chunks4) == 4
        # Cache is touched in lane order either way.
        assert d1["tier"]["page_hits"] == d4["tier"]["page_hits"]
        assert d1["tier"]["page_misses"] == d4["tier"]["page_misses"]
