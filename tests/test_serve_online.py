"""Concurrent insert+search through the serving layer (satellite c).

The write path must serialize inserts in submission order (fair RW
lock), so an interleaved read/write history leaves the online index in
exactly the state a serial build of the same insertion order produces.
"""

import asyncio

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.online import OnlineSongIndex
from repro.serve import (
    AdmissionConfig,
    BatchPolicy,
    OnlineServeEngine,
    Replica,
    ServerConfig,
    SongServer,
    run_loadtest,
)
from repro.serve.clock import run_virtual


@pytest.fixture()
def stream():
    rng = np.random.default_rng(77)
    return rng.normal(size=(160, 16)).astype(np.float32)


def make_online_index(seed_vectors):
    idx = OnlineSongIndex(16, m=4, ef_construction=24)
    idx.add(seed_vectors)
    return idx


def make_server(index, slo_ms=50.0):
    cfg = ServerConfig(
        base=SearchConfig(k=5, queue_size=24),
        admission=AdmissionConfig(policy="reject", slo_p99_s=slo_ms / 1e3),
        batch=BatchPolicy(mode="fixed", batch_size=4, max_wait_s=0.0005),
    )
    return SongServer([Replica(OnlineServeEngine(index))], cfg)


class TestSnapshotCaching:
    def test_snapshot_cached_until_insert(self, stream):
        idx = make_online_index(stream[:40])
        g1 = idx.snapshot_graph()
        assert idx.snapshot_graph() is g1  # cache hit, no rebuild
        idx.add(stream[40])
        g2 = idx.snapshot_graph()
        assert g2 is not g1
        assert g2.num_vertices == 41

    def test_engine_snapshot_invalidated_on_insert(self, stream):
        idx = make_online_index(stream[:40])
        engine = OnlineServeEngine(idx)
        e1 = engine._engine()
        assert engine._engine() is e1
        engine.run_inserts(stream[40:42])
        e2 = engine._engine()
        assert e2 is not e1
        assert len(e2.index.data) == 42


class TestConcurrentInsertSearch:
    def test_interleaved_history_equals_serial_build(self, stream):
        """Drive interleaved writes/reads; adjacency must equal a serial
        build over the same insertion order."""
        seed_vectors = stream[:50]
        inserts = stream[50:80]

        async def main():
            index = make_online_index(seed_vectors)
            server = make_server(index)
            await server.start()
            tasks = []
            # interleave: search, insert, search, insert, ...
            for i in range(len(inserts)):
                tasks.append(
                    asyncio.create_task(server.submit(stream[i % 50]))
                )
                tasks.append(
                    asyncio.create_task(server.submit_insert(inserts[i]))
                )
                await asyncio.sleep(0.0003)
            responses = await asyncio.gather(*tasks)
            await server.stop()
            return index, responses

        index, responses = run_virtual(main())
        assert all(r.ok for r in responses)
        inserted = [r for r in responses if r.kind == "insert"]
        # ids assigned in submission order
        assert [r.inserted_id for r in inserted] == list(range(50, 80))

        serial = make_online_index(seed_vectors)
        serial.add(inserts)
        assert len(index) == len(serial)
        np.testing.assert_array_equal(index.data, serial.data)
        for v in range(len(serial)):
            assert index._adjacency[v] == serial._adjacency[v], f"vertex {v}"

    def test_search_results_valid_during_ingest(self, stream):
        """Reads during writes return ids only from already-inserted points."""

        async def main():
            index = make_online_index(stream[:50])
            server = make_server(index)
            await server.start()
            sizes_at_submit = []
            tasks = []
            for i in range(20):
                sizes_at_submit.append(len(index))
                tasks.append(asyncio.create_task(server.submit(stream[i])))
                tasks.append(
                    asyncio.create_task(server.submit_insert(stream[50 + i]))
                )
                await asyncio.sleep(0.0004)
            responses = await asyncio.gather(*tasks)
            await server.stop()
            return responses

        responses = run_virtual(main())
        final_size = 70
        for resp in responses:
            if resp.kind == "search":
                assert resp.ok
                assert all(0 <= v < final_size for _, v in resp.results)

    def test_mixed_loadtest_through_poisson_driver(self, stream):
        """The loadgen insert_every path exercises the same machinery."""
        seed_vectors = stream[:60]

        def factory():
            return make_server(make_online_index(seed_vectors))

        report = run_loadtest(
            factory,
            stream[:20],
            rate_qps=5_000,
            num_requests=120,
            seed=9,
            insert_every=4,
            insert_vectors=stream[60:90],
        )
        assert report.shed == 0
        assert report.completed == 120
        assert report.metrics["counters"]["inserted"] == 30

    def test_mixed_loadtest_deterministic(self, stream):
        seed_vectors = stream[:60]

        def run_once():
            return run_loadtest(
                lambda: make_server(make_online_index(seed_vectors)),
                stream[:20],
                rate_qps=5_000,
                num_requests=80,
                seed=9,
                insert_every=5,
                insert_vectors=stream[60:76],
            ).to_dict()

        assert run_once() == run_once()
