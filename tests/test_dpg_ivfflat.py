"""DPG graph and IVF-Flat baseline tests."""

import numpy as np
import pytest

from repro.baselines.flat import FlatIndex
from repro.baselines.ivfflat import IVFFlatIndex
from repro.baselines.ivfpq import IVFPQIndex
from repro.core.algorithm1 import algorithm1_search
from repro.graphs.dpg import build_dpg


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(41)
    return rng.normal(size=(400, 12)).astype(np.float32)


class TestDPG:
    @pytest.fixture(scope="class")
    def dpg(self, points):
        return build_dpg(points, degree=12)

    def test_valid_graph(self, dpg, points):
        dpg.validate()
        assert dpg.num_vertices == len(points)
        assert dpg.degree == 12

    def test_degree_validation(self, points):
        with pytest.raises(ValueError):
            build_dpg(points, degree=1)

    def test_mostly_undirected(self, dpg):
        """DPG adds reverse edges; most edges should be symmetric."""
        sym = total = 0
        for v in range(dpg.num_vertices):
            for u in dpg.neighbors(v):
                total += 1
                if v in dpg.neighbors(int(u)):
                    sym += 1
        assert sym / total > 0.6

    def test_search_recall(self, dpg, points):
        hits = 0
        for q in range(20):
            d = ((points - points[q]) ** 2).sum(axis=1)
            truth = set(np.argsort(d, kind="stable")[:10].tolist())
            res = algorithm1_search(dpg, points, points[q], 10, queue_size=50)
            hits += len(truth & {v for _, v in res})
        assert hits / 200 > 0.85

    def test_edges_diverse(self, dpg, points):
        """Diversified out-edges should not all point the same way: the
        mean pairwise cosine among a vertex's first half-degree edges is
        well below 1."""
        v = 0
        row = [int(u) for u in dpg.neighbors(v)][:6]
        dirs = points[row] - points[v]
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        cos = dirs @ dirs.T
        off_diag = cos[~np.eye(len(row), dtype=bool)]
        assert off_diag.mean() < 0.8

    def test_accepts_precomputed_table(self, points):
        from repro.graphs.bruteforce_knn import knn_neighbors

        table = knn_neighbors(points, 24)
        g = build_dpg(points, degree=12, knn_table=table)
        g.validate()


class TestIVFFlat:
    @pytest.fixture(scope="class")
    def index(self, points):
        idx = IVFFlatIndex(12, nlist=16, seed=0).train(points)
        idx.add(points)
        return idx

    def test_lifecycle_validation(self, points):
        with pytest.raises(ValueError):
            IVFFlatIndex(8, nlist=0)
        idx = IVFFlatIndex(12, nlist=8)
        with pytest.raises(RuntimeError):
            idx.add(points)
        with pytest.raises(RuntimeError):
            IVFFlatIndex(12, nlist=8).train(points).search(points[0], 5)

    def test_full_probe_is_exact(self, index, points):
        """With every list probed, IVF-Flat equals brute force."""
        flat = FlatIndex(points)
        for q in points[:10]:
            got = [v for _, v in index.search(q, 5, nprobe=index.nlist)]
            ref = [v for _, v in flat.search(q, 5)]
            assert got == ref

    def test_recall_monotone_in_nprobe(self, index, points):
        flat = FlatIndex(points)
        def recall(nprobe):
            hits = 0
            for q in points[:20]:
                truth = {v for _, v in flat.search(q, 10)}
                got = {v for _, v in index.search(q, 10, nprobe=nprobe)}
                hits += len(truth & got)
            return hits / 200

        assert recall(16) >= recall(4) - 0.02 >= recall(1) - 0.04

    def test_no_quantization_ceiling_vs_ivfpq(self, points):
        """The IVF-Flat / IVFPQ contrast: same coarse structure, but only
        PQ has a recall ceiling below exactness."""
        flat_idx = IVFFlatIndex(12, nlist=8, seed=0).train(points)
        flat_idx.add(points)
        pq_idx = IVFPQIndex(12, nlist=8, m=4, ksub=16, seed=0).train(points)
        pq_idx.add(points)
        exact = FlatIndex(points)
        f_hits = p_hits = 0
        for q in points[:20]:
            truth = {v for _, v in exact.search(q, 10)}
            f_hits += len(truth & {v for _, v in flat_idx.search(q, 10, nprobe=8)})
            p_hits += len(truth & {v for _, v in pq_idx.search(q, 10, nprobe=8)})
        assert f_hits == 200  # exact with all lists probed
        assert p_hits < f_hits

    def test_gpu_search_and_memory(self, index, points):
        results, timing = index.gpu_search_batch(points[:5], 5, nprobe=4)
        assert len(results) == 5
        assert timing.kernel_seconds > 0
        # IVF-Flat stores raw vectors: far bigger than IVFPQ codes.
        pq = IVFPQIndex(12, nlist=16, m=4, ksub=16, seed=0).train(points)
        pq.add(points)
        assert index.memory_bytes() > pq.memory_bytes()

    def test_k_validation(self, index, points):
        with pytest.raises(ValueError):
            index.search(points[0], 0)
