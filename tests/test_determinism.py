"""Determinism guarantees: the docs promise reports regenerate exactly."""


from repro.core.config import SearchConfig
from repro.core.gpu_kernel import GpuSongIndex
from repro.data import make_dataset
from repro.eval import sweep_gpu_song
from repro.graphs import build_nsw


class TestEndToEndDeterminism:
    def test_identical_sweeps_across_runs(self):
        def run():
            ds = make_dataset("sift", n=400, num_queries=15, seed=3)
            graph = build_nsw(ds.data, m=6, ef_construction=24, seed=7)
            idx = GpuSongIndex(graph, ds.data)
            pts = sweep_gpu_song(ds, idx, [10, 30], k=5)
            return [(p.param, p.recall, p.qps) for p in pts]

        assert run() == run()

    def test_identical_results_across_searcher_instances(self):
        ds = make_dataset("nytimes", n=300, num_queries=10, seed=1)
        graph = build_nsw(ds.data, m=6, ef_construction=24, seed=2)
        cfg = SearchConfig(k=5, queue_size=20, selected_insertion=True,
                           visited_deletion=True)
        a = GpuSongIndex(graph, ds.data).search_batch(ds.queries, cfg)[0]
        b = GpuSongIndex(graph, ds.data).search_batch(ds.queries, cfg)[0]
        assert a == b

    def test_timing_model_is_pure(self):
        """Cost-model timing depends only on inputs, never on wall clock."""
        ds = make_dataset("sift", n=300, num_queries=10, seed=4)
        graph = build_nsw(ds.data, m=6, ef_construction=24, seed=5)
        idx = GpuSongIndex(graph, ds.data)
        cfg = SearchConfig(k=5, queue_size=20)
        _, t1 = idx.search_batch(ds.queries, cfg)
        _, t2 = idx.search_batch(ds.queries, cfg)
        assert t1.kernel_seconds == t2.kernel_seconds
        assert t1.stage_cycles == t2.stage_cycles
        assert t1.warp_cycles == t2.warp_cycles
