"""Bloom filter tests: no false negatives, bounded false positives."""

import pytest

from repro.structures.bloom import BloomFilter, optimal_parameters


class TestSizing:
    def test_optimal_parameters_reasonable(self):
        bits, hashes = optimal_parameters(1000, 0.01)
        assert 9000 < bits < 11000  # ~9.6 bits/key at 1%
        assert 5 <= hashes <= 9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ValueError):
            optimal_parameters(10, 1.5)
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(64, 0)

    def test_bits_rounded_to_words(self):
        f = BloomFilter(33)
        assert f.num_bits == 64
        assert f.memory_bytes() == 8

    def test_paper_sizing_claim(self):
        """~300 32-bit words handle 1,000 keys below 1% false positives."""
        f = BloomFilter(300 * 32, num_hashes=7)
        for i in range(1000):
            f.insert(i)
        fp = sum(f.contains(k) for k in range(10_000, 30_000)) / 20_000
        assert fp < 0.02  # paper claims <1%; allow slack for hash quality


class TestSemantics:
    def test_no_false_negatives(self):
        f = BloomFilter.for_items(500, 0.01)
        inserted = [i * 37 for i in range(500)]
        for k in inserted:
            f.insert(k)
        for k in inserted:
            assert f.contains(k), "Bloom filter must never lose a key"

    def test_insert_returns_new_flag(self):
        f = BloomFilter.for_items(100)
        assert f.insert(42)
        assert not f.insert(42)

    def test_delete_unsupported(self):
        f = BloomFilter(64)
        with pytest.raises(NotImplementedError):
            f.delete(1)

    def test_clear(self):
        f = BloomFilter.for_items(100)
        f.insert(5)
        f.clear()
        assert not f.contains(5)
        assert len(f) == 0

    def test_negative_key_rejected(self):
        f = BloomFilter(64)
        with pytest.raises(ValueError):
            f.insert(-1)
        with pytest.raises(ValueError):
            f.contains(-3)

    def test_fp_rate_near_theory(self):
        f = BloomFilter.for_items(300, 0.05)
        for i in range(300):
            f.insert(i)
        measured = sum(f.contains(k) for k in range(1000, 11000)) / 10_000
        expected = f.expected_fp_rate()
        assert measured <= max(2.5 * expected, 0.10)

    def test_fp_rate_grows_with_fill(self):
        f = BloomFilter(512, num_hashes=4)
        r0 = f.expected_fp_rate()
        for i in range(200):
            f.insert(i)
        assert f.expected_fp_rate() > r0
