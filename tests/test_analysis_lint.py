"""Hot-path linter tests: seeded violations, the allow() escape hatch,
and the clean bill for the repo's real hot modules."""

import textwrap
from pathlib import Path

from repro.analysis import lint_paths, lint_source
from repro.analysis.findings import Severity

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

HEADER = '"""Doc."""\n# lint: hot-path\n'


def src(body: str) -> str:
    return HEADER + textwrap.dedent(body)


def rules(findings):
    return {f.rule for f in findings}


class TestHotLoop:
    def test_range_over_variable_extent_flagged(self):
        findings = lint_source(src("""
            __all__ = []
            def f(n):
                for i in range(n):
                    pass
        """), "mod.py")
        assert rules(findings) == {"hot-loop"}
        assert "range()" in findings[0].message

    def test_constant_range_is_exempt(self):
        assert lint_source(src("""
            __all__ = []
            def f():
                for i in range(8):
                    pass
        """), "mod.py") == []

    def test_enumerate_flagged(self):
        findings = lint_source(src("""
            __all__ = []
            def f(xs):
                for i, x in enumerate(xs):
                    pass
        """), "mod.py")
        assert rules(findings) == {"hot-loop"}

    def test_tolist_flagged(self):
        findings = lint_source(src("""
            __all__ = []
            def f(arr):
                for v in arr.tolist():
                    pass
        """), "mod.py")
        assert rules(findings) == {"hot-loop"}

    def test_while_loop_and_direct_iteration_exempt(self):
        assert lint_source(src("""
            __all__ = []
            def f(xs):
                while xs:
                    xs = xs[1:]
                for x in xs:
                    pass
        """), "mod.py") == []

    def test_unmarked_file_is_ignored(self):
        source = '"""Doc."""\ndef f(n):\n    for i in range(n):\n        pass\n'
        assert lint_source(source, "mod.py") == []


class TestAllowEscapeHatch:
    def test_allow_on_same_line(self):
        assert lint_source(src("""
            __all__ = []
            def f(n):
                for i in range(n):  # lint: allow(hot-loop)
                    pass
        """), "mod.py") == []

    def test_allow_on_line_above(self):
        assert lint_source(src("""
            __all__ = []
            def f(n):
                # lint: allow(hot-loop)
                for i in range(n):
                    pass
        """), "mod.py") == []

    def test_allow_on_enclosing_def_line(self):
        assert lint_source(src("""
            __all__ = []
            def f(n):  # lint: allow(hot-loop)
                for i in range(n):
                    for j in range(i):
                        pass
        """), "mod.py") == []

    def test_allow_names_only_the_given_rule(self):
        findings = lint_source(src("""
            __all__ = []
            def f(n):
                for i in range(n):  # lint: allow(float64-upcast)
                    pass
        """), "mod.py")
        assert rules(findings) == {"hot-loop"}

    def test_allow_accepts_a_rule_list(self):
        assert lint_source(src("""
            __all__ = []
            def f(n):
                for i in range(n):  # lint: allow(hot-loop, float64-upcast)
                    pass
        """), "mod.py") == []


class TestFloat64Upcast:
    def test_packed_key_meets_float_literal(self):
        findings = lint_source(src("""
            __all__ = []
            def f(d, i):
                keys = pack_keys(d, i)
                return keys + 1.5
        """), "mod.py")
        assert rules(findings) == {"float64-upcast"}
        assert "float64" in findings[0].message

    def test_packed_key_with_uint64_operand_is_clean(self):
        assert lint_source(src("""
            __all__ = []
            import numpy as np
            def f(d, i):
                keys = pack_keys(d, i)
                return keys >> np.uint64(32)
        """), "mod.py") == []

    def test_dataflow_through_a_derived_name(self):
        findings = lint_source(src("""
            __all__ = []
            import numpy as np
            def f(d, i):
                keys = pack_keys(d, i)
                high = keys >> np.uint64(32)
                return high * 2.0
        """), "mod.py")
        assert rules(findings) == {"float64-upcast"}

    def test_pad_key_constant_is_a_seed(self):
        findings = lint_source(src("""
            __all__ = []
            def f():
                sentinel = PAD_KEY
                return sentinel - 0.5
        """), "mod.py")
        assert rules(findings) == {"float64-upcast"}

    def test_plain_float_math_untouched(self):
        assert lint_source(src("""
            __all__ = []
            def f(x):
                return x * 2.0 + 1.5
        """), "mod.py") == []


class TestExports:
    def test_missing_all_is_an_error(self):
        findings = lint_source('"""Doc."""\n# lint: hot-path\nX = 1\n', "mod.py")
        assert [f.rule for f in findings] == ["exports"]
        assert findings[0].severity is Severity.ERROR

    def test_undefined_export_is_an_error(self):
        findings = lint_source(src('__all__ = ["ghost"]\n'), "mod.py")
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert errors and "ghost" in errors[0].message

    def test_undocumented_export_is_a_warning(self):
        findings = lint_source(src("""
            __all__ = ["f"]
            def f():
                pass
        """), "mod.py")
        warns = [f for f in findings if f.severity is Severity.WARNING]
        assert warns and "'f'" in warns[0].message

    def test_missing_module_docstring_is_a_warning(self):
        findings = lint_source("# lint: hot-path\n__all__ = []\n", "mod.py")
        assert [f.severity for f in findings] == [Severity.WARNING]

    def test_imported_and_documented_exports_are_clean(self):
        assert lint_source(src("""
            from os.path import join
            __all__ = ["join", "g", "K"]
            K = 3
            def g():
                '''Documented.'''
        """), "mod.py") == []


class TestRepoHotModules:
    HOT = [
        REPO_SRC / "core" / "batched.py",
        REPO_SRC / "structures" / "soa.py",
        REPO_SRC / "graphs" / "nn_descent.py",
        REPO_SRC / "distances" / "metrics.py",
    ]

    def test_hot_modules_exist_and_are_marked(self):
        from repro.analysis import HOT_MARKER

        for path in self.HOT:
            lines = [line.strip() for line in path.read_text().splitlines()]
            assert HOT_MARKER in lines, f"{path} lost its hot-path marker"

    def test_hot_modules_lint_clean(self):
        assert lint_paths(self.HOT) == []

    def test_lint_paths_skips_non_python(self, tmp_path):
        f = tmp_path / "notes.txt"
        f.write_text("# lint: hot-path\nfor i in range(n): pass\n")
        assert lint_paths([f]) == []
