"""NSG construction tests."""

import numpy as np
import pytest

from repro.core.algorithm1 import algorithm1_search
from repro.graphs.bruteforce_knn import medoid
from repro.graphs.nsg import NSGBuilder, build_nsg


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(31)
    return rng.normal(size=(300, 10)).astype(np.float32)


@pytest.fixture(scope="module")
def nsg(points):
    return build_nsg(points, degree=10, knn=10, search_len=24)


class TestConstruction:
    def test_valid_graph(self, nsg, points):
        nsg.validate()
        assert nsg.num_vertices == len(points)
        assert nsg.degree == 10

    def test_entry_is_medoid(self, nsg, points):
        assert nsg.entry_point == medoid(points)

    def test_all_vertices_reachable_from_navigating_node(self, nsg):
        seen = {nsg.entry_point}
        stack = [nsg.entry_point]
        while stack:
            v = stack.pop()
            for u in nsg.neighbors(v):
                if int(u) not in seen:
                    seen.add(int(u))
                    stack.append(int(u))
        assert len(seen) == nsg.num_vertices, "NSG must span all vertices"

    def test_monotonic_rng_pruning_property(self, nsg, points):
        """For kept edges (v,a),(v,b) with d(v,a) < d(v,b): d(a,b) >= d(v,b)
        must hold at selection time; verify the weaker pairwise form on the
        final rows (connectivity fixing may add a few extra edges)."""
        violations = 0
        checked = 0
        for v in range(0, nsg.num_vertices, 17):
            row = [int(u) for u in nsg.neighbors(v)]
            dv = {u: float(((points[v] - points[u]) ** 2).sum()) for u in row}
            ordered = sorted(row, key=lambda u: dv[u])
            for i, a in enumerate(ordered):
                for b in ordered[i + 1 :]:
                    checked += 1
                    dab = float(((points[a] - points[b]) ** 2).sum())
                    if dab < dv[b]:
                        violations += 1
        assert checked > 0
        assert violations / checked < 0.2  # tolerance for tree-fix edges

    def test_dataset_too_small_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            build_nsg(rng.normal(size=(5, 4)), degree=4, knn=8)

    def test_invalid_degree(self, points):
        with pytest.raises(ValueError):
            NSGBuilder(points, degree=0)

    def test_accepts_precomputed_knn_table(self, points):
        from repro.graphs.bruteforce_knn import knn_neighbors

        table = knn_neighbors(points, 10)
        g = build_nsg(points, degree=8, knn=10, knn_table=table)
        g.validate()


class TestSearchQuality:
    def test_search_recall(self, nsg, points):
        hits = 0
        for q in range(20):
            d = ((points - points[q]) ** 2).sum(axis=1)
            truth = set(np.argsort(d, kind="stable")[:10].tolist())
            res = algorithm1_search(nsg, points, points[q], 10, queue_size=50)
            hits += len(truth & {v for _, v in res})
        assert hits / 200 > 0.85
