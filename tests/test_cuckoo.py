"""Cuckoo filter tests: deletion support and probabilistic semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.cuckoo import CuckooFilter

keys = st.integers(min_value=0, max_value=10**7)


class TestBasics:
    def test_insert_contains_delete(self):
        f = CuckooFilter(64)
        assert f.insert(10)
        assert f.contains(10)
        assert f.delete(10)
        assert not f.contains(10)

    def test_delete_absent_returns_false(self):
        f = CuckooFilter(64)
        assert not f.delete(123)

    def test_duplicate_insert_reports_present(self):
        f = CuckooFilter(64)
        assert f.insert(7)
        assert not f.insert(7)
        assert len(f) == 1

    def test_negative_key_rejected(self):
        f = CuckooFilter(8)
        for op in (f.insert, f.contains, f.delete):
            with pytest.raises(ValueError):
                op(-5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CuckooFilter(0)
        with pytest.raises(ValueError):
            CuckooFilter(8, fingerprint_bits=2)
        with pytest.raises(ValueError):
            CuckooFilter(8, bucket_size=0)

    def test_clear(self):
        f = CuckooFilter(64)
        for i in range(30):
            f.insert(i)
        f.clear()
        assert len(f) == 0
        assert f.load_factor() == 0.0

    def test_overflow_raises_when_grossly_overfilled(self):
        f = CuckooFilter(8, max_kicks=50)
        with pytest.raises(OverflowError):
            for i in range(10_000):
                f.insert(i * 7919)

    def test_memory_accounting(self):
        f = CuckooFilter(100, fingerprint_bits=12, bucket_size=4)
        expected_bits = f.num_buckets * 4 * 12
        assert f.memory_bytes() == (expected_bits + 7) // 8


class TestNoFalseNegatives:
    def test_stored_keys_always_found(self):
        f = CuckooFilter(1000)
        ks = [i * 31 + 1 for i in range(800)]
        for k in ks:
            f.insert(k)
        for k in ks:
            assert f.contains(k), "cuckoo filter lost a stored key"

    def test_deletion_only_affects_target(self):
        f = CuckooFilter(500)
        ks = list(range(0, 4000, 10))
        for k in ks:
            f.insert(k)
        for k in ks[::4]:
            f.delete(k)
        survivors = [k for i, k in enumerate(ks) if i % 4 != 0]
        for k in survivors:
            assert f.contains(k)

    def test_false_positive_rate_small(self):
        f = CuckooFilter(2000, fingerprint_bits=12)
        for i in range(1500):
            f.insert(i)
        fp = sum(f.contains(k) for k in range(100_000, 120_000)) / 20_000
        assert fp < 0.05


class TestAgainstOracle:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["add", "del"]), st.integers(0, 500)),
            max_size=200,
        )
    )
    def test_membership_superset_of_oracle(self, ops):
        """The filter may report extras (FPs) but never misses a member."""
        f = CuckooFilter(1024)
        oracle = set()
        for op, k in ops:
            if op == "add":
                if k not in oracle:
                    f.insert(k)
                    oracle.add(k)
            else:
                if k in oracle:
                    f.delete(k)
                    oracle.discard(k)
        for k in oracle:
            assert f.contains(k)
