"""Warp-vote instruction and warp-parallel probing tests."""

import numpy as np
import pytest

from repro.simt import isa
from repro.simt.kernels import run_warp_probe
from repro.simt.simulator import WarpSimulator


def run(program, **regs):
    sim = WarpSimulator(program, global_mem=np.zeros(64), shared_mem=np.zeros(64))
    for name, val in regs.items():
        sim.set_register(name, val)
    sim.run()
    return sim


class TestVote:
    def test_any(self):
        values = np.zeros(32)
        values[17] = 1.0
        sim = run([isa.Vote(mode="any", dst="r", src="x")], x=values)
        assert (sim.register("r") == 1.0).all()

    def test_any_false(self):
        sim = run([isa.Vote(mode="any", dst="r", src="x")], x=np.zeros(32))
        assert (sim.register("r") == 0.0).all()

    def test_all(self):
        sim = run([isa.Vote(mode="all", dst="r", src="x")], x=np.ones(32))
        assert (sim.register("r") == 1.0).all()
        partial = np.ones(32)
        partial[5] = 0.0
        sim = run([isa.Vote(mode="all", dst="r", src="x")], x=partial)
        assert (sim.register("r") == 0.0).all()

    def test_ballot_ffs(self):
        values = np.zeros(32)
        values[9] = 1.0
        values[20] = 1.0
        sim = run([isa.Vote(mode="ballot_ffs", dst="r", src="x")], x=values)
        assert sim.register("r")[0] == 9.0

    def test_ballot_none(self):
        sim = run([isa.Vote(mode="ballot_ffs", dst="r", src="x")], x=np.zeros(32))
        assert sim.register("r")[0] == -1.0

    def test_vote_respects_active_mask(self):
        values = np.zeros(32)
        values[3] = 1.0  # lane 3 votes yes but will be masked off
        program = [
            isa.LaneId(dst="lane"),
            isa.Cmp(rel="ge", dst="hi", a="lane", b=16.0),
            isa.If(pred="hi"),
            isa.Vote(mode="any", dst="r", src="x"),
            isa.EndIf(),
        ]
        sim = run(program, x=values)
        # only lanes >= 16 voted; lane 3's value is invisible
        assert (sim.register("r")[16:] == 0.0).all()

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            run([isa.Vote(mode="count", dst="r", src="x")], x=np.zeros(32))


class TestWarpProbe:
    def test_finds_key_within_window(self):
        table = np.full(64, -1.0)
        table[10] = 7.0
        found, empty, _ = run_warp_probe(table, home=8, key=7)
        assert found == 2  # two slots past home

    def test_reports_first_empty(self):
        table = np.full(64, 5.0)  # full of other keys
        table[12] = -1.0
        found, empty, _ = run_warp_probe(table, home=8, key=99)
        assert found == -1
        assert empty == 4

    def test_wraps_around_table(self):
        table = np.full(32, -1.0)
        table[1] = 3.0
        found, _, _ = run_warp_probe(table, home=30, key=3)
        assert found == 3  # 30 -> 31 -> 0 -> 1

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            run_warp_probe(np.full(48, -1.0), home=0, key=1)

    def test_single_round_is_constant_cycles(self):
        """The paper's point: one 32-slot probe window costs O(1) warp
        work regardless of where (or whether) the key sits."""
        cycle_counts = set()
        for offset in (0, 7, 31):
            table = np.full(64, -1.0)
            table[offset] = 1.0
            _, _, stats = run_warp_probe(table, home=0, key=1)
            cycle_counts.add(stats.cycles)
        assert len(cycle_counts) == 1
