"""Additional edge-case coverage for training and sweep paths."""

import numpy as np

from repro.baselines.pq import ProductQuantizer
from repro.baselines.ivfpq import IVFPQIndex
from repro.core.config import SearchConfig
from repro.core.gpu_kernel import GpuSongIndex
from repro.data.datasets import Dataset
from repro.eval.sweep import sweep_gpu_song
from repro.graphs.nsw import build_nsw


class TestSmallTrainingSets:
    def test_pq_with_fewer_points_than_ksub(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(10, 8))
        pq = ProductQuantizer(8, m=2, ksub=32, seed=0).train(data)
        codes = pq.encode(data)
        assert codes.shape == (10, 2)
        # reconstruction must still be sane
        assert pq.quantization_error(data) < float(
            ((data - data.mean(0)) ** 2).sum(axis=1).mean()
        ) + 1e-9

    def test_ivfpq_nlist_clamped_to_data(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(20, 8))
        idx = IVFPQIndex(8, nlist=64, m=2, ksub=8, seed=0).train(data)
        assert idx.nlist == 20
        idx.add(data)
        assert len(idx.search(data[0], 3, nprobe=20)) == 3


class TestSweepOverrides:
    def test_ground_truth_override_used(self, small_dataset, small_graph):
        """Passing explicit ground truth skips the dataset cache — needed
        for tiled (saturated) query batches."""
        idx = GpuSongIndex(small_graph, small_dataset.data)
        tiled = Dataset(
            name="t",
            data=small_dataset.data,
            queries=np.tile(small_dataset.queries, (2, 1)),
        )
        gt = np.tile(small_dataset.ground_truth(10), (2, 1))
        pts = sweep_gpu_song(tiled, idx, [20], k=10, ground_truth=gt)
        assert 0 < pts[0].recall <= 1

    def test_sweep_config_passthrough(self, small_dataset, small_graph):
        idx = GpuSongIndex(small_graph, small_dataset.data)
        cfg = SearchConfig(k=10, queue_size=20, probe_steps=2)
        pts = sweep_gpu_song(small_dataset, idx, [20, 40], k=10, config=cfg)
        assert len(pts) == 2


class TestNSWEdges:
    def test_single_point(self):
        data = np.zeros((1, 4), dtype=np.float32)
        g = build_nsw(data, m=2, ef_construction=4)
        assert g.num_vertices == 1
        assert g.out_degree(0) == 0

    def test_m_larger_than_dataset(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(5, 4)).astype(np.float32)
        g = build_nsw(data, m=8, ef_construction=8)
        g.validate()
        # with 5 points everyone can connect to everyone else
        assert all(g.out_degree(v) <= 4 for v in range(5))
