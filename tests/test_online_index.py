"""Online (incremental) index tests."""

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.online import OnlineSongIndex


@pytest.fixture()
def stream():
    rng = np.random.default_rng(51)
    return rng.normal(size=(300, 16)).astype(np.float32)


class TestIngestion:
    def test_ids_sequential(self, stream):
        idx = OnlineSongIndex(16, m=4, capacity=8)
        ids = idx.add(stream[:10])
        assert ids == list(range(10))
        assert len(idx) == 10

    def test_capacity_growth(self, stream):
        idx = OnlineSongIndex(16, m=4, capacity=4)
        idx.add(stream[:50])
        assert len(idx) == 50
        np.testing.assert_array_equal(idx.data, stream[:50])

    def test_dim_validation(self, stream):
        idx = OnlineSongIndex(16)
        with pytest.raises(ValueError):
            idx.add(np.zeros((2, 8), dtype=np.float32))
        with pytest.raises(ValueError):
            OnlineSongIndex(0)
        with pytest.raises(ValueError):
            OnlineSongIndex(16, m=0)

    def test_degree_bound_maintained(self, stream):
        idx = OnlineSongIndex(16, m=4, max_degree=6)
        idx.add(stream[:100])
        graph = idx.snapshot_graph()
        graph.validate()
        assert graph.degree == 6

    def test_empty_snapshot_raises(self):
        with pytest.raises(RuntimeError):
            OnlineSongIndex(16).snapshot_graph()


class TestSearchAfterInserts:
    def test_recall_on_streamed_index(self, stream):
        idx = OnlineSongIndex(16, m=8, ef_construction=32)
        idx.add(stream)
        cfg = SearchConfig(k=10, queue_size=60)
        queries = stream[:20]
        results, timing = idx.search_batch(queries, cfg)
        hits = 0
        for q, res in zip(queries, results):
            d = ((stream - q) ** 2).sum(axis=1)
            truth = set(np.argsort(d, kind="stable")[:10].tolist())
            hits += len(truth & {v for _, v in res})
        assert hits / 200 > 0.85
        assert timing.kernel_seconds > 0

    def test_insert_then_find_new_point(self, stream):
        idx = OnlineSongIndex(16, m=6)
        idx.add(stream[:100])
        new_id = idx.add(stream[200])[0]
        cfg = SearchConfig(k=1, queue_size=20)
        results, _ = idx.search_batch(stream[200], cfg)
        assert results[0][0][1] == new_id

    def test_incremental_equals_bulk_recall_roughly(self, stream):
        """Streaming in two halves should not collapse search quality."""
        idx = OnlineSongIndex(16, m=8, ef_construction=32)
        idx.add(stream[:150])
        idx.add(stream[150:])
        cfg = SearchConfig(k=5, queue_size=40)
        results, _ = idx.search_batch(stream[:10], cfg)
        assert all(res[0][1] == i for i, res in enumerate(results))
