"""CAGRA builder tests: validity, connectivity, quality, cost metering.

The CAGRA-shaped builder is validated against the NSG it is meant to
outclass on build time: at equal max degree the detour-count reordering
plus reverse merge must match or beat NSG's search recall (measured
margin at this seed is ~0.04; the assertion is exact ``>=`` because the
whole pipeline is deterministic).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.song import SongSearcher
from repro.eval import batch_recall
from repro.graphs import build_cagra, build_nsg
from repro.graphs._repair import reachable_mask
from repro.graphs.cagra import CagraBuilder
from repro.graphs.storage import PAD
from repro.simt.build_cost import BuildCostRecorder

N, DIM, NUM_QUERIES, K, DEGREE = 1000, 16, 100, 10, 16


@pytest.fixture(scope="module")
def cagra_data():
    rng = np.random.default_rng(0)
    data = rng.standard_normal((N, DIM)).astype(np.float32)
    queries = rng.standard_normal((NUM_QUERIES, DIM)).astype(np.float32)
    dists = ((queries[:, None, :] - data[None, :, :]) ** 2).sum(axis=-1)
    ground_truth = np.argsort(dists, axis=1, kind="stable")[:, :K]
    return data, queries, ground_truth


@pytest.fixture(scope="module")
def cagra_graph(cagra_data):
    data, _, _ = cagra_data
    return build_cagra(data, degree=DEGREE, seed=0)


def _search_recall(graph, data, queries, ground_truth) -> float:
    config = SearchConfig(k=K, queue_size=64)
    results = SongSearcher(graph, data).search_batch(queries, config)
    return batch_recall(results, ground_truth)


class TestStructure:
    def test_adjacency_valid(self, cagra_graph):
        adj = cagra_graph.adjacency_array
        assert adj.shape == (N, DEGREE)
        real = adj[adj != PAD]
        assert real.min() >= 0 and real.max() < N
        # no self-loops anywhere
        rows = np.repeat(np.arange(N), DEGREE)
        assert not np.any(adj.ravel() == rows)

    def test_rows_deduplicated(self, cagra_graph):
        adj = cagra_graph.adjacency_array
        for row in adj:
            real = row[row != PAD]
            assert len(np.unique(real)) == len(real)

    def test_fully_reachable(self, cagra_graph):
        adj = cagra_graph.adjacency_array.astype(np.int64)
        assert reachable_mask(adj, cagra_graph.entry_point).all()

    def test_engines_identical_below_exact_threshold(self, cagra_data):
        # below _EXACT_BOOTSTRAP_MAX both engines bootstrap by exact
        # kNN, and every optimization pass is deterministic
        data, _, _ = cagra_data
        a = build_cagra(data, degree=DEGREE, build_engine="batched")
        b = build_cagra(data, degree=DEGREE, build_engine="serial")
        np.testing.assert_array_equal(a.adjacency_array, b.adjacency_array)


class TestQuality:
    def test_recall_at_least_nsg(self, cagra_data, cagra_graph):
        data, queries, gt = cagra_data
        nsg = build_nsg(data, degree=DEGREE, knn=DEGREE, search_len=48)
        cagra_recall = _search_recall(cagra_graph, data, queries, gt)
        nsg_recall = _search_recall(nsg, data, queries, gt)
        assert cagra_recall >= nsg_recall

    def test_recall_floor(self, cagra_data, cagra_graph):
        data, queries, gt = cagra_data
        assert _search_recall(cagra_graph, data, queries, gt) >= 0.95


class TestValidation:
    def test_degree_too_small(self, cagra_data):
        data, _, _ = cagra_data
        with pytest.raises(ValueError, match="degree"):
            CagraBuilder(data, degree=1)

    def test_intermediate_below_degree(self, cagra_data):
        data, _, _ = cagra_data
        with pytest.raises(ValueError, match="intermediate_degree"):
            CagraBuilder(data, degree=16, intermediate_degree=8)

    def test_unknown_engine(self, cagra_data):
        data, _, _ = cagra_data
        with pytest.raises(ValueError, match="build_engine"):
            CagraBuilder(data, build_engine="gpu")

    def test_knn_table_shape_checked(self, cagra_data):
        data, _, _ = cagra_data
        bad = np.zeros((N, 3), dtype=np.int64)
        with pytest.raises(ValueError, match="knn_table"):
            CagraBuilder(data, degree=DEGREE, knn_table=bad).build()

    def test_dataset_too_small(self):
        with pytest.raises(ValueError, match="too small"):
            build_cagra(np.zeros((8, 4), dtype=np.float32), degree=8)


class TestCostRecorder:
    def test_records_phases(self, cagra_data):
        data, _, _ = cagra_data
        rec = BuildCostRecorder()
        build_cagra(data, degree=DEGREE, cost=rec)
        assert len(rec.phases) > 0
        labels = {p.name for p in rec.phases}
        assert "reorder" in labels and "reverse-merge" in labels
        assert rec.device_cycles() > 0
        assert rec.device_seconds() > 0
        assert rec.cpu_seconds() > 0

    def test_modeled_device_beats_modeled_cpu(self, cagra_data):
        # the point of the cost model: the same counted work is orders
        # of magnitude cheaper on the device than on one CPU core
        data, _, _ = cagra_data
        rec = BuildCostRecorder()
        build_cagra(data, degree=DEGREE, cost=rec)
        assert rec.device_seconds() < rec.cpu_seconds()


class TestClusteredData:
    def test_disconnected_clusters_get_bridged(self):
        # two well-separated blobs: the kNN table alone is disconnected,
        # so the repair pass must bridge components
        rng = np.random.default_rng(3)
        a = rng.standard_normal((300, 8)).astype(np.float32)
        b = rng.standard_normal((300, 8)).astype(np.float32) + 80.0
        data = np.concatenate([a, b])
        graph = build_cagra(data, degree=8, seed=0)
        adj = graph.adjacency_array.astype(np.int64)
        assert reachable_mask(adj, graph.entry_point).all()
