"""Microkernel tests + cross-validation of the analytic cost model.

The analytic model (:mod:`repro.simt.cost` / :mod:`repro.simt.warp`)
prices SONG's stages from aggregate counts; these tests check its key
assumptions against cycle-accurate measurements of the same primitives.
"""

import numpy as np
import pytest

from repro.simt.kernels import (
    run_distance_kernel,
    run_hamming_kernel,
    single_lane_scan_kernel,
    squared_l2_kernel,
    strided_read_kernel,
    warp_reduce_kernel,
)
from repro.simt.simulator import SMSimulator, WarpSimulator


@pytest.fixture(scope="module")
def rng_pair():
    rng = np.random.default_rng(4)
    return rng.normal(size=100), rng.normal(size=100)


class TestFunctionalCorrectness:
    def test_l2_matches_numpy(self, rng_pair):
        q, v = rng_pair
        val, _ = run_distance_kernel(q, v, "l2")
        assert val == pytest.approx(float(((q - v) ** 2).sum()), rel=1e-9)

    def test_ip_matches_numpy(self, rng_pair):
        q, v = rng_pair
        val, _ = run_distance_kernel(q, v, "ip")
        assert val == pytest.approx(float(-(q @ v)), rel=1e-9)

    @pytest.mark.parametrize("dim", [1, 31, 32, 33, 100, 256])
    def test_l2_every_dim_boundary(self, dim):
        rng = np.random.default_rng(dim)
        q, v = rng.normal(size=dim), rng.normal(size=dim)
        val, _ = run_distance_kernel(q, v, "l2")
        assert val == pytest.approx(float(((q - v) ** 2).sum()), rel=1e-9)

    def test_hamming_matches_reference(self):
        rng = np.random.default_rng(9)
        a = rng.integers(0, 2**32, size=16, dtype=np.uint32)
        b = rng.integers(0, 2**32, size=16, dtype=np.uint32)
        val, _ = run_hamming_kernel(a, b)
        expected = sum(bin(int(x) ^ int(y)).count("1") for x, y in zip(a, b))
        assert val == expected

    def test_unsupported_metric(self, rng_pair):
        q, v = rng_pair
        with pytest.raises(ValueError):
            run_distance_kernel(q, v, "cosine")


class TestCostModelValidation:
    def test_coalesced_vs_scattered_transaction_ratio(self):
        """The analytic model's 8x scattered-waste rule: 32 consecutive
        4-byte words = 1 transaction; 32 scattered words = 32."""
        _, coalesced = self._run_stride(1)
        _, scattered = self._run_stride(32)
        assert coalesced.global_transactions == 1
        assert scattered.global_transactions == 32

    @staticmethod
    def _run_stride(stride):
        sim = WarpSimulator(strided_read_kernel(stride), global_mem=np.zeros(4096))
        return sim, sim.run()

    def test_warp_reduce_is_log2_steps(self):
        """The analytic model charges log2(32)=5 shuffle steps; the IR
        reduction is exactly 5 shuffles + 5 adds."""
        program = warp_reduce_kernel("acc")
        assert len(program) == 10

    def test_distance_kernel_flops_scale_with_dim(self):
        _, s100 = run_distance_kernel(np.zeros(100), np.zeros(100))
        _, s200 = run_distance_kernel(np.zeros(200), np.zeros(200))
        assert s200.instructions > s100.instructions

    def test_single_lane_scan_wastes_31_lanes(self):
        """Sequential maintenance on one lane: the cycle count scales with
        the scan length even though only 1/32 of the machine works — the
        divergence the maintenance stage pays."""
        def scan(count):
            sim = WarpSimulator(
                single_lane_scan_kernel(count),
                global_mem=np.zeros(8),
                shared_mem=np.zeros(max(count, 32)),
            )
            return sim.run()

        s50 = scan(50)
        s100 = scan(100)
        assert s100.cycles > 1.7 * s50.cycles - 100

    def test_latency_hiding_supports_overlap_factor(self):
        """With 16+ resident warps the measured per-warp cost of a
        memory-bound distance kernel drops by an order of magnitude —
        justifying the analytic model's deep overlap for streaming reads."""
        def make_warp():
            rng = np.random.default_rng(0)
            q, v = rng.normal(size=64), rng.normal(size=64)
            shared = np.zeros(64)
            shared[:] = q
            g = np.zeros(64)
            g[:] = v
            w = WarpSimulator(squared_l2_kernel(64), global_mem=g, shared_mem=shared)
            w.set_register("query_base", 0.0)
            w.set_register("vec_base", 0.0)
            return w

        single = SMSimulator([make_warp()]).run().total_cycles
        many = SMSimulator([make_warp() for _ in range(16)]).run()
        assert many.total_cycles / 16 < single / 5

    def test_hamming_cheaper_than_float_distance(self):
        """Fig. 14's speed advantage: 128-bit Hamming (4 words) costs far
        fewer cycles than a 784-dim float distance."""
        rng = np.random.default_rng(1)
        sig_a = rng.integers(0, 2**32, size=4, dtype=np.uint32)
        sig_b = rng.integers(0, 2**32, size=4, dtype=np.uint32)
        _, hamming = run_hamming_kernel(sig_a, sig_b)
        q, v = rng.normal(size=784), rng.normal(size=784)
        _, full = run_distance_kernel(q, v, "l2")
        assert hamming.cycles < full.cycles / 3
