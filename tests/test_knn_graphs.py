"""Exact kNN graph and NN-descent tests."""

import numpy as np
import pytest

from repro.graphs.bruteforce_knn import build_knn_graph, knn_neighbors, medoid
from repro.graphs.nn_descent import graph_recall, nn_descent


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(3)
    return rng.normal(size=(300, 12)).astype(np.float32)


class TestExactKnn:
    def test_neighbors_are_exact(self, points):
        nbrs = knn_neighbors(points, 5)
        # verify a few rows against a direct argsort
        for v in (0, 17, 199):
            d = ((points - points[v]) ** 2).sum(axis=1)
            d[v] = np.inf
            expected = np.argsort(d, kind="stable")[:5]
            assert set(nbrs[v]) == set(expected)

    def test_neighbors_sorted_by_distance(self, points):
        nbrs = knn_neighbors(points, 5)
        for v in (0, 50):
            ds = [((points[v] - points[u]) ** 2).sum() for u in nbrs[v]]
            assert ds == sorted(ds)

    def test_excludes_self(self, points):
        nbrs = knn_neighbors(points, 8)
        for v in range(len(points)):
            assert v not in nbrs[v]

    def test_blocked_matches_unblocked(self, points):
        a = knn_neighbors(points, 4, block=32)
        b = knn_neighbors(points, 4, block=10_000)
        np.testing.assert_array_equal(a, b)

    def test_invalid_k(self, points):
        with pytest.raises(ValueError):
            knn_neighbors(points, 0)
        with pytest.raises(ValueError):
            knn_neighbors(points, len(points))

    def test_build_graph_entry_is_medoid(self, points):
        g = build_knn_graph(points, 4)
        assert g.entry_point == medoid(points)
        g.validate()

    def test_medoid_minimizes_distance_to_centroid(self, points):
        m = medoid(points)
        center = points.mean(axis=0)
        d = ((points - center) ** 2).sum(axis=1)
        assert m == int(np.argmin(d))


class TestNNDescent:
    def test_high_recall_vs_exact(self, points):
        exact = knn_neighbors(points, 8)
        approx = nn_descent(points, 8, seed=1)
        assert graph_recall(approx, exact) > 0.85

    def test_deterministic_given_seed(self, points):
        a = nn_descent(points[:100], 5, seed=9)
        b = nn_descent(points[:100], 5, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_no_self_neighbors(self, points):
        approx = nn_descent(points[:100], 5, seed=0)
        for v in range(100):
            assert v not in approx[v]

    def test_shape(self, points):
        approx = nn_descent(points[:50], 6, seed=0)
        assert approx.shape == (50, 6)

    def test_k_too_large_rejected(self, points):
        with pytest.raises(ValueError):
            nn_descent(points[:10], 10)

    def test_graph_recall_validates_shapes(self):
        with pytest.raises(ValueError):
            graph_recall(np.zeros((3, 2), dtype=int), np.zeros((3, 3), dtype=int))


class TestAdaptiveCap:
    """``max_candidates=None`` derives the join-list cap from the tail."""

    @pytest.fixture(scope="class")
    def hubby(self):
        # a dense shrunken cloud with a few near-centroid points: in
        # moderate dimension the planted points are near-neighbors of a
        # large share of the cloud and collect huge reverse lists
        rng = np.random.default_rng(0)
        base = 0.05 * rng.standard_normal((1500, 24)).astype(np.float32)
        hubs = 0.01 * rng.standard_normal((8, 24)).astype(np.float32)
        return np.vstack([base, hubs]).astype(np.float32)

    def test_identical_to_slack_fixed_cap_on_typical_data(self, points):
        """On typical degree distributions the adaptive cap never binds,
        so results are bit-identical to a run with a huge fixed cap."""
        stats = {}
        adaptive = nn_descent(points, 8, seed=4, stats=stats)
        fixed = nn_descent(points, 8, seed=4, max_candidates=512)
        np.testing.assert_array_equal(adaptive, fixed)
        assert sum(stats["capped_vertices"]) == 0

    def test_caps_only_hubs_on_hub_heavy_data(self, hubby):
        stats = {}
        nn_descent(hubby, 10, seed=4, stats=stats)
        # the cap bound some vertices (the hubs), but only a handful
        assert max(stats["capped_vertices"]) > 0
        assert max(stats["capped_vertices"]) <= 12
        # and the cap tracked the tail, not the hub maximum
        rounds = range(1, len(stats["caps"]))  # round 0 starts uniform
        assert any(stats["max_list_len"][r] > stats["caps"][r] for r in rounds)

    def test_recall_survives_hub_truncation(self, hubby):
        from repro.graphs.bruteforce_knn import knn_neighbors

        exact = knn_neighbors(hubby, 10)
        approx = nn_descent(hubby, 10, seed=4)
        assert graph_recall(approx, exact) > 0.85

    def test_stats_keys_and_lengths(self, points):
        stats = {}
        nn_descent(points[:150], 6, seed=0, stats=stats)
        assert set(stats) == {"caps", "max_list_len", "capped_vertices"}
        rounds = len(stats["caps"])
        assert rounds >= 1
        assert len(stats["max_list_len"]) == rounds
        assert len(stats["capped_vertices"]) == rounds
        assert all(c >= 32 for c in stats["caps"])

    def test_explicit_cap_still_respected(self, points):
        stats = {}
        nn_descent(points[:150], 6, seed=0, max_candidates=16, stats=stats)
        assert all(c == 16 for c in stats["caps"])
        with pytest.raises(ValueError):
            nn_descent(points[:150], 6, max_candidates=0)
