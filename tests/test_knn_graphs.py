"""Exact kNN graph and NN-descent tests."""

import numpy as np
import pytest

from repro.graphs.bruteforce_knn import build_knn_graph, knn_neighbors, medoid
from repro.graphs.nn_descent import graph_recall, nn_descent


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(3)
    return rng.normal(size=(300, 12)).astype(np.float32)


class TestExactKnn:
    def test_neighbors_are_exact(self, points):
        nbrs = knn_neighbors(points, 5)
        # verify a few rows against a direct argsort
        for v in (0, 17, 199):
            d = ((points - points[v]) ** 2).sum(axis=1)
            d[v] = np.inf
            expected = np.argsort(d, kind="stable")[:5]
            assert set(nbrs[v]) == set(expected)

    def test_neighbors_sorted_by_distance(self, points):
        nbrs = knn_neighbors(points, 5)
        for v in (0, 50):
            ds = [((points[v] - points[u]) ** 2).sum() for u in nbrs[v]]
            assert ds == sorted(ds)

    def test_excludes_self(self, points):
        nbrs = knn_neighbors(points, 8)
        for v in range(len(points)):
            assert v not in nbrs[v]

    def test_blocked_matches_unblocked(self, points):
        a = knn_neighbors(points, 4, block=32)
        b = knn_neighbors(points, 4, block=10_000)
        np.testing.assert_array_equal(a, b)

    def test_invalid_k(self, points):
        with pytest.raises(ValueError):
            knn_neighbors(points, 0)
        with pytest.raises(ValueError):
            knn_neighbors(points, len(points))

    def test_build_graph_entry_is_medoid(self, points):
        g = build_knn_graph(points, 4)
        assert g.entry_point == medoid(points)
        g.validate()

    def test_medoid_minimizes_distance_to_centroid(self, points):
        m = medoid(points)
        center = points.mean(axis=0)
        d = ((points - center) ** 2).sum(axis=1)
        assert m == int(np.argmin(d))


class TestNNDescent:
    def test_high_recall_vs_exact(self, points):
        exact = knn_neighbors(points, 8)
        approx = nn_descent(points, 8, seed=1)
        assert graph_recall(approx, exact) > 0.85

    def test_deterministic_given_seed(self, points):
        a = nn_descent(points[:100], 5, seed=9)
        b = nn_descent(points[:100], 5, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_no_self_neighbors(self, points):
        approx = nn_descent(points[:100], 5, seed=0)
        for v in range(100):
            assert v not in approx[v]

    def test_shape(self, points):
        approx = nn_descent(points[:50], 6, seed=0)
        assert approx.shape == (50, 6)

    def test_k_too_large_rejected(self, points):
        with pytest.raises(ValueError):
            nn_descent(points[:10], 10)

    def test_graph_recall_validates_shapes(self):
        with pytest.raises(ValueError):
            graph_recall(np.zeros((3, 2), dtype=int), np.zeros((3, 3), dtype=int))
