"""Min-max heap / bounded priority queue tests (hypothesis-heavy)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.minmax_heap import BoundedPriorityQueue, SymmetricMinMaxHeap

entries = st.lists(
    st.tuples(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=10**6),
    ),
    max_size=150,
)


class TestSymmetricMinMaxHeap:
    def test_min_and_max_simple(self):
        h = SymmetricMinMaxHeap()
        for d in [4.0, 1.0, 3.0, 2.0]:
            h.push(d, int(d))
        assert h.peek_min() == (1.0, 1)
        assert h.peek_max() == (4.0, 4)

    def test_empty_raises(self):
        h = SymmetricMinMaxHeap()
        for op in (h.peek_min, h.peek_max, h.pop_min, h.pop_max):
            with pytest.raises(IndexError):
                op()

    def test_single_element_both_ends(self):
        h = SymmetricMinMaxHeap()
        h.push(1.0, 7)
        assert h.peek_min() == h.peek_max() == (1.0, 7)

    @settings(max_examples=80, deadline=None)
    @given(items=entries)
    def test_pop_min_sorts_ascending(self, items):
        h = SymmetricMinMaxHeap()
        for d, v in items:
            h.push(d, v)
        assert [h.pop_min() for _ in items] == sorted(items)

    @settings(max_examples=80, deadline=None)
    @given(items=entries)
    def test_pop_max_sorts_descending(self, items):
        h = SymmetricMinMaxHeap()
        for d, v in items:
            h.push(d, v)
        assert [h.pop_max() for _ in items] == sorted(items, reverse=True)

    @settings(max_examples=80, deadline=None)
    @given(items=entries, ops=st.lists(st.booleans(), max_size=150))
    def test_interleaved_pops_match_sorted_oracle(self, items, ops):
        """Arbitrary pop-min/pop-max interleavings match a sorted list."""
        h = SymmetricMinMaxHeap()
        oracle = []
        for d, v in items:
            h.push(d, v)
            oracle.append((d, v))
        oracle.sort()
        for take_min in ops:
            if not oracle:
                break
            if take_min:
                assert h.pop_min() == oracle.pop(0)
            else:
                assert h.pop_max() == oracle.pop()
        assert len(h) == len(oracle)

    @settings(max_examples=50, deadline=None)
    @given(items=entries)
    def test_invariant_after_pushes(self, items):
        """min ≤ every stored item ≤ max at all times."""
        h = SymmetricMinMaxHeap()
        for d, v in items:
            h.push(d, v)
            lo, hi = h.peek_min(), h.peek_max()
            assert lo <= (d, v) <= hi or (lo <= (d, v) and (d, v) <= hi)
            assert lo == min(h._items)
            assert hi == max(h._items)


class TestBoundedPriorityQueue:
    def test_capacity_enforced(self):
        q = BoundedPriorityQueue(3)
        for d in [5.0, 1.0, 4.0, 2.0, 3.0]:
            q.push(d, int(d))
        assert len(q) == 3
        assert q.to_sorted_list() == [(1.0, 1), (2.0, 2), (3.0, 3)]

    def test_push_returns_eviction(self):
        q = BoundedPriorityQueue(2)
        assert q.push(2.0, 2) is None
        assert q.push(1.0, 1) is None
        assert q.push(3.0, 3) == (3.0, 3)  # bounced off
        assert q.push(0.5, 5) == (2.0, 2)  # displaced the worst

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedPriorityQueue(0)

    @settings(max_examples=80, deadline=None)
    @given(items=entries, cap=st.integers(min_value=1, max_value=30))
    def test_keeps_best_capacity_items(self, items, cap):
        q = BoundedPriorityQueue(cap)
        for d, v in items:
            q.push(d, v)
        assert q.to_sorted_list() == sorted(items)[: min(cap, len(items))]

    @settings(max_examples=40, deadline=None)
    @given(items=entries, cap=st.integers(min_value=1, max_value=10))
    def test_observation1_eviction_safety(self, items, cap):
        """Observation 1: every evicted entry is ≥ all retained entries
        at the moment of eviction (so it could never enter the top-K)."""
        q = BoundedPriorityQueue(cap)
        for d, v in items:
            evicted = q.push(d, v)
            if evicted is not None:
                retained_max = q.peek_max()
                assert evicted >= retained_max
