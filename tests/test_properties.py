"""Cross-cutting property-based tests on the whole search stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm1 import algorithm1_search
from repro.core.config import SearchConfig
from repro.core.song import SongSearcher
from repro.graphs.bruteforce_knn import build_knn_graph
from repro.structures.visited import VisitedBackend

# A fixed pool of datasets (hypothesis draws indexes into it) keeps graph
# construction out of the per-example budget.
_RNG = np.random.default_rng(1234)
_DATA = _RNG.normal(size=(160, 8)).astype(np.float32)
_GRAPH = build_knn_graph(_DATA, 8)
_SEARCHER = SongSearcher(_GRAPH, _DATA)


@st.composite
def search_configs(draw):
    k = draw(st.integers(min_value=1, max_value=20))
    queue = draw(st.integers(min_value=k, max_value=80))
    sel = draw(st.booleans())
    deletion = draw(st.booleans())
    backend = draw(
        st.sampled_from(
            [VisitedBackend.HASH_TABLE, VisitedBackend.PYSET, VisitedBackend.CUCKOO]
        )
    )
    probe = draw(st.sampled_from([1, 2, 4]))
    return SearchConfig(
        k=k,
        queue_size=queue,
        selected_insertion=sel,
        visited_deletion=deletion,
        visited_backend=backend,
        probe_steps=probe,
    )


class TestSearchInvariants:
    @settings(max_examples=60, deadline=None)
    @given(cfg=search_configs(), qi=st.integers(min_value=0, max_value=159))
    def test_results_well_formed_under_any_config(self, cfg, qi):
        """Any optimization combination yields sorted, duplicate-free,
        in-range results with true distances."""
        res = _SEARCHER.search(_DATA[qi], cfg)
        assert 0 < len(res) <= cfg.k
        ids = [v for _, v in res]
        assert len(ids) == len(set(ids))
        ds = [d for d, _ in res]
        assert ds == sorted(ds)
        for d, v in res:
            assert 0 <= v < len(_DATA)
            true = float(((_DATA[v] - _DATA[qi]) ** 2).sum())
            assert d == pytest.approx(true, rel=1e-3, abs=1e-5)

    @settings(max_examples=40, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=15),
        queue=st.integers(min_value=0, max_value=60),
        qi=st.integers(min_value=0, max_value=159),
    )
    def test_song_equals_algorithm1_without_lossy_opts(self, k, queue, qi):
        """With exact visited set and no lossy optimizations, the 3-stage
        decomposition is a pure refactoring of Algorithm 1."""
        queue_size = max(k, queue)
        cfg = SearchConfig(
            k=k, queue_size=queue_size, visited_backend=VisitedBackend.PYSET
        )
        song = _SEARCHER.search(_DATA[qi], cfg)
        ref = algorithm1_search(_GRAPH, _DATA, _DATA[qi], k, queue_size=queue_size)
        assert [v for _, v in song] == [v for _, v in ref]

    @settings(max_examples=30, deadline=None)
    @given(qi=st.integers(min_value=0, max_value=159))
    def test_self_match_ranks_first_when_reached(self, qi):
        """A directed kNN graph does not guarantee every vertex is
        reachable, but *if* the query point itself is returned it must be
        the first result with distance zero."""
        cfg = SearchConfig(k=5, queue_size=20)
        res = _SEARCHER.search(_DATA[qi], cfg)
        ids = [v for _, v in res]
        if qi in ids:
            assert res[0] == (0.0, qi)

    @settings(max_examples=25, deadline=None)
    @given(
        qi=st.integers(min_value=0, max_value=159),
        k=st.integers(min_value=1, max_value=10),
    )
    def test_recall_never_hurt_by_bigger_queue(self, qi, k):
        """Enlarging the frontier can only expand the explored region."""
        d = ((_DATA - _DATA[qi]) ** 2).sum(axis=1)
        truth = set(np.argsort(d, kind="stable")[:k].tolist())

        def recall(queue):
            cfg = SearchConfig(k=k, queue_size=max(queue, k))
            got = {v for _, v in _SEARCHER.search(_DATA[qi], cfg)}
            return len(got & truth) / k

        assert recall(64) >= recall(max(k, 8)) - 0.34  # allow local jitter


class TestVisitedDeletionInvariant:
    @settings(max_examples=30, deadline=None)
    @given(qi=st.integers(min_value=0, max_value=159))
    def test_visited_stays_bounded(self, qi):
        """visited ⊆ q ∪ topk under sel+del: peak size ≤ 2·queue + degree."""
        from repro.core.song import SearchStats

        cfg = SearchConfig(
            k=10,
            queue_size=24,
            selected_insertion=True,
            visited_deletion=True,
        )
        stats = SearchStats()
        _SEARCHER.search(_DATA[qi], cfg, stats=stats)
        assert stats.visited_peak <= 2 * 24 + _GRAPH.degree
