"""SearchConfig validation and optimization-level bundles."""

import pytest

from repro.core.config import OptimizationLevel, SearchConfig
from repro.structures.visited import VisitedBackend


class TestValidation:
    def test_defaults_valid(self):
        cfg = SearchConfig()
        assert cfg.k == 10
        assert cfg.queue_size >= cfg.k

    def test_k_positive(self):
        with pytest.raises(ValueError):
            SearchConfig(k=0)

    def test_queue_at_least_k(self):
        with pytest.raises(ValueError):
            SearchConfig(k=20, queue_size=10)

    def test_multi_query_whitelist(self):
        with pytest.raises(ValueError):
            SearchConfig(multi_query=3)
        SearchConfig(multi_query=4)  # ok

    def test_probe_steps_positive(self):
        with pytest.raises(ValueError):
            SearchConfig(probe_steps=0)

    def test_visited_deletion_needs_deletable_backend(self):
        with pytest.raises(ValueError, match="deletable"):
            SearchConfig(
                visited_backend=VisitedBackend.BLOOM, visited_deletion=True
            )

    def test_bloom_fp_rate_range(self):
        with pytest.raises(ValueError):
            SearchConfig(bloom_fp_rate=0.0)


class TestCapacityHeuristic:
    def test_deletion_bound_is_2k(self):
        cfg = SearchConfig(
            k=10, queue_size=50, visited_deletion=True, selected_insertion=True
        )
        cap = cfg.effective_visited_capacity(degree=16)
        assert cap == 2 * 50 + 16

    def test_no_deletion_much_larger(self):
        small = SearchConfig(k=10, queue_size=50, visited_deletion=True,
                             selected_insertion=True)
        big = SearchConfig(k=10, queue_size=50)
        assert big.effective_visited_capacity(16) > small.effective_visited_capacity(16)

    def test_explicit_capacity_wins(self):
        cfg = SearchConfig(visited_capacity=777)
        assert cfg.effective_visited_capacity(16) == 777


class TestLevels:
    def test_all_levels_construct(self):
        for level in OptimizationLevel:
            cfg = SearchConfig.from_level(level, k=5, queue_size=20)
            assert cfg.k == 5

    def test_sel_del_level_flags(self):
        cfg = SearchConfig.from_level(OptimizationLevel.SELECTED_AND_DELETION)
        assert cfg.selected_insertion
        assert cfg.visited_deletion
        assert cfg.visited_backend == VisitedBackend.HASH_TABLE

    def test_bloom_level_backend(self):
        cfg = SearchConfig.from_level(OptimizationLevel.BLOOM)
        assert cfg.visited_backend == VisitedBackend.BLOOM
        assert not cfg.visited_deletion

    def test_with_options_copy(self):
        a = SearchConfig(k=10, queue_size=40)
        b = a.with_options(queue_size=100)
        assert a.queue_size == 40
        assert b.queue_size == 100
        assert b.k == 10


class TestBuildConfig:
    def test_defaults_valid(self):
        from repro.core.config import BuildConfig

        cfg = BuildConfig()
        assert cfg.engine == "batched"
        assert cfg.insert_batch == 512
        assert cfg.max_candidates is None

    def test_engine_whitelist(self):
        from repro.core.config import BUILD_ENGINES, BuildConfig

        for engine in BUILD_ENGINES:
            BuildConfig(engine=engine)  # ok
        with pytest.raises(ValueError):
            BuildConfig(engine="gpu")

    def test_graph_type_whitelist(self):
        from repro.core.config import GRAPH_TYPES, BuildConfig

        assert "cagra" in GRAPH_TYPES
        for graph_type in GRAPH_TYPES:
            BuildConfig(graph_type=graph_type)  # ok
        with pytest.raises(ValueError):
            BuildConfig(graph_type="voronoi")

    def test_insert_batch_positive(self):
        from repro.core.config import BuildConfig

        with pytest.raises(ValueError):
            BuildConfig(insert_batch=0)

    def test_max_candidates_positive_or_none(self):
        from repro.core.config import BuildConfig

        BuildConfig(max_candidates=None)  # ok
        BuildConfig(max_candidates=64)  # ok
        with pytest.raises(ValueError):
            BuildConfig(max_candidates=0)

    def test_with_options_copy(self):
        from repro.core.config import BuildConfig

        a = BuildConfig()
        b = a.with_options(engine="serial", insert_batch=64)
        assert a.engine == "batched" and a.insert_batch == 512
        assert b.engine == "serial" and b.insert_batch == 64
