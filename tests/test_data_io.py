"""TEXMEX vector file format tests."""

import numpy as np
import pytest

from repro.data.io import read_ground_truth_ivecs, read_vecs, write_vecs


class TestRoundTrip:
    def test_fvecs(self, tmp_path):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(20, 8)).astype(np.float32)
        path = str(tmp_path / "x.fvecs")
        write_vecs(path, data)
        back = read_vecs(path)
        np.testing.assert_array_equal(back, data)
        assert back.dtype == np.float32

    def test_ivecs(self, tmp_path):
        data = np.arange(24, dtype=np.int32).reshape(4, 6)
        path = str(tmp_path / "x.ivecs")
        write_vecs(path, data)
        np.testing.assert_array_equal(read_vecs(path), data)

    def test_bvecs(self, tmp_path):
        data = np.arange(30, dtype=np.uint8).reshape(5, 6)
        path = str(tmp_path / "x.bvecs")
        write_vecs(path, data)
        np.testing.assert_array_equal(read_vecs(path), data)

    def test_count_cap(self, tmp_path):
        data = np.zeros((10, 4), dtype=np.float32)
        path = str(tmp_path / "x.fvecs")
        write_vecs(path, data)
        assert read_vecs(path, count=3).shape == (3, 4)

    def test_ground_truth_reader(self, tmp_path):
        gt = np.arange(12, dtype=np.int32).reshape(3, 4)
        path = str(tmp_path / "gt.ivecs")
        write_vecs(path, gt)
        loaded = read_ground_truth_ivecs(path)
        assert loaded.dtype == np.int64
        np.testing.assert_array_equal(loaded, gt)


class TestValidation:
    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError, match="extension"):
            read_vecs(str(tmp_path / "x.npy"))
        with pytest.raises(ValueError, match="extension"):
            write_vecs(str(tmp_path / "x.dat"), np.zeros((2, 2)))

    def test_corrupt_trailing_bytes(self, tmp_path):
        path = str(tmp_path / "x.fvecs")
        write_vecs(path, np.zeros((3, 4), dtype=np.float32))
        with open(path, "ab") as f:
            f.write(b"\x01\x02")
        with pytest.raises(ValueError, match="record size"):
            read_vecs(path)

    def test_inconsistent_dims(self, tmp_path):
        path = str(tmp_path / "x.fvecs")
        # two records with different dims but same byte length is impossible
        # in this format unless crafted; craft dim=2/f32 then dim=2 header
        # replaced by 3 to trip the header check after the modulo passes.
        data = np.zeros((2, 2), dtype=np.float32)
        write_vecs(path, data)
        raw = bytearray(open(path, "rb").read())
        raw[12:16] = np.array([7], dtype="<i4").tobytes()  # corrupt 2nd header
        open(path, "wb").write(bytes(raw))
        with pytest.raises(ValueError, match="inconsistent|record size"):
            read_vecs(path)

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "x.fvecs")
        open(path, "wb").close()
        assert read_vecs(path).shape == (0, 0)

    def test_2d_required_on_write(self, tmp_path):
        with pytest.raises(ValueError, match="2-d"):
            write_vecs(str(tmp_path / "x.fvecs"), np.zeros(5))
