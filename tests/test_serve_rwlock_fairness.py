"""Property-based fairness tests for AsyncRWLock on the virtual clock.

The lock documents two guarantees (DESIGN.md Sec. 9):

* FIFO admission: waiters are served in arrival order, except that
  adjacent queued readers may enter together.
* No writer starvation: once a writer queues, readers arriving later
  queue behind it instead of piggybacking on the active read phase.

Hypothesis drives random arrival schedules; every schedule runs under
``run_virtual`` so interleavings are deterministic and instant.
"""

import asyncio

from hypothesis import given, settings, strategies as st

from repro.serve.clock import run_virtual
from repro.serve.router import AsyncRWLock

# Each schedule is a sequence of ("r" | "w") arrivals.  Arrival order is
# the task spawn order; every task yields once before acquiring so the
# queue builds up while a long initial writer holds the lock.
SCHEDULES = st.lists(st.sampled_from("rw"), min_size=1, max_size=12)


async def _run_schedule(kinds):
    """Queue every arrival behind an initial writer; record admissions.

    Returns (admit_order, max_concurrent_readers, invariant_ok).
    """
    lock = AsyncRWLock()
    admit = []
    active = {"r": 0, "w": 0}
    ok = True

    async def reader(idx):
        await lock.acquire_read()
        admit.append(idx)
        active["r"] += 1
        nonlocal ok
        if active["w"]:
            ok = False
        await asyncio.sleep(0.001)
        active["r"] -= 1
        lock.release_read()

    async def writer(idx):
        await lock.acquire_write()
        admit.append(idx)
        active["w"] += 1
        nonlocal ok
        if active["w"] > 1 or active["r"]:
            ok = False
        await asyncio.sleep(0.001)
        active["w"] -= 1
        lock.release_write()

    # Hold the lock exclusively while all arrivals queue up, so admission
    # order reflects queue policy rather than racing the initial grab.
    await lock.acquire_write()
    tasks = []
    for idx, kind in enumerate(kinds):
        coro = reader(idx) if kind == "r" else writer(idx)
        tasks.append(asyncio.create_task(coro))
    await asyncio.sleep(0)  # let every task reach its acquire
    lock.release_write()
    await asyncio.gather(*tasks)
    return admit, ok


def expected_order(kinds):
    """FIFO admission order: strictly increasing indices.

    With every waiter queued before the lock frees, _wake admits the
    head of the queue (plus adjacent readers) each release, so the
    admission sequence is exactly arrival order.
    """
    return list(range(len(kinds)))


class TestFairness:
    @settings(max_examples=60, deadline=None)
    @given(SCHEDULES)
    def test_fifo_admission(self, kinds):
        admit, ok = run_virtual(_run_schedule(kinds))
        assert ok, "exclusion invariant violated"
        assert admit == expected_order(kinds)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8))
    def test_writer_not_starved_by_late_readers(self, before, after):
        """A writer queued behind readers admits before readers that
        arrive after it, no matter how many pile up."""
        kinds = "r" * before + "w" + "r" * after

        async def scenario():
            lock = AsyncRWLock()
            admit = []

            async def reader(tag):
                await lock.acquire_read()
                admit.append(tag)
                await asyncio.sleep(0.001)
                lock.release_read()

            async def writer(tag):
                await lock.acquire_write()
                admit.append(tag)
                await asyncio.sleep(0.001)
                lock.release_write()

            tasks = []
            for i in range(before):
                tasks.append(asyncio.create_task(reader(("early", i))))
            await asyncio.sleep(0)  # early readers now hold the lock
            tasks.append(asyncio.create_task(writer(("writer", 0))))
            await asyncio.sleep(0)  # writer queued
            for i in range(after):
                tasks.append(asyncio.create_task(reader(("late", i))))
            await asyncio.gather(*tasks)
            return admit

        admit = run_virtual(scenario())
        writer_pos = admit.index(("writer", 0))
        early = [i for i, t in enumerate(admit) if t[0] == "early"]
        late = [i for i, t in enumerate(admit) if t[0] == "late"]
        assert all(i < writer_pos for i in early)
        assert all(i > writer_pos for i in late)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=2, max_value=10))
    def test_adjacent_readers_admit_together(self, n):
        """All-reader queues drain in one wake: every reader is active
        simultaneously before any releases."""

        async def scenario():
            lock = AsyncRWLock()
            peak = {"now": 0, "max": 0}

            async def reader():
                await lock.acquire_read()
                peak["now"] += 1
                peak["max"] = max(peak["max"], peak["now"])
                await asyncio.sleep(0.001)
                peak["now"] -= 1
                lock.release_read()

            await lock.acquire_write()
            tasks = [asyncio.create_task(reader()) for _ in range(n)]
            await asyncio.sleep(0)
            lock.release_write()
            await asyncio.gather(*tasks)
            return peak["max"]

        assert run_virtual(scenario()) == n
