"""Tests for the tree/hash baselines the paper excludes (KD-tree,
RP-forest, multi-probe LSH)."""

import numpy as np
import pytest

from repro.baselines.flat import FlatIndex
from repro.baselines.kdtree import KDTreeIndex
from repro.baselines.lsh import LSHIndex
from repro.baselines.rp_forest import RPForestIndex


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(23)
    return rng.normal(size=(600, 12)).astype(np.float32)


@pytest.fixture(scope="module")
def flat(data):
    return FlatIndex(data)


class TestKDTree:
    @pytest.fixture(scope="class")
    def tree(self, data):
        return KDTreeIndex(data, leaf_size=16)

    def test_exact_with_unlimited_budget(self, tree, data, flat):
        for q in data[:10]:
            got = tree.search(q, 5, max_leaves=10_000)
            ref = flat.search(q, 5)
            assert [v for _, v in got] == [v for _, v in ref]
            for (dg, _), (dr, _) in zip(got, ref):
                assert dg == pytest.approx(dr, rel=1e-5, abs=1e-6)

    def test_recall_grows_with_budget(self, tree, data, flat):
        def recall(max_leaves):
            hits = 0
            for q in data[:25]:
                truth = {v for _, v in flat.search(q, 10)}
                got = {v for _, v in tree.search(q, 10, max_leaves=max_leaves)}
                hits += len(truth & got)
            return hits / 250

        assert recall(32) >= recall(2) - 0.02

    def test_budget_limits_scanned_points(self, tree, data):
        tree.search(data[0], 5, max_leaves=2)
        small = tree.last_scanned
        tree.search(data[0], 5, max_leaves=64)
        assert tree.last_scanned >= small

    def test_validation(self, data):
        with pytest.raises(ValueError):
            KDTreeIndex(data, leaf_size=0)
        tree = KDTreeIndex(data[:50])
        with pytest.raises(ValueError):
            tree.search(data[0], 0)

    def test_duplicate_points_handled(self):
        dup = np.zeros((40, 4), dtype=np.float32)
        tree = KDTreeIndex(dup, leaf_size=4)
        res = tree.search(np.zeros(4), 3, max_leaves=100)
        assert len(res) == 3
        assert all(d == 0.0 for d, _ in res)

    def test_memory_positive(self, tree):
        assert tree.memory_bytes() > 0


class TestRPForest:
    @pytest.fixture(scope="class")
    def forest(self, data):
        return RPForestIndex(data, num_trees=8, leaf_size=16, seed=1)

    def test_reasonable_recall(self, forest, data, flat):
        hits = 0
        for q in data[:25]:
            truth = {v for _, v in flat.search(q, 10)}
            got = {v for _, v in forest.search(q, 10, search_budget=300)}
            hits += len(truth & got)
        assert hits / 250 > 0.6

    def test_recall_grows_with_budget(self, forest, data, flat):
        def recall(budget):
            hits = 0
            for q in data[:20]:
                truth = {v for _, v in flat.search(q, 10)}
                got = {v for _, v in forest.search(q, 10, search_budget=budget)}
                hits += len(truth & got)
            return hits / 200

        assert recall(400) >= recall(50) - 0.02

    def test_no_duplicate_candidates(self, forest, data):
        res = forest.search(data[0], 10, search_budget=200)
        ids = [v for _, v in res]
        assert len(ids) == len(set(ids))

    def test_validation(self, data):
        with pytest.raises(ValueError):
            RPForestIndex(data, num_trees=0)
        with pytest.raises(ValueError):
            RPForestIndex(data, leaf_size=0)
        forest = RPForestIndex(data[:50], num_trees=2)
        with pytest.raises(ValueError):
            forest.search(data[0], 0)

    def test_deterministic_given_seed(self, data):
        a = RPForestIndex(data[:100], num_trees=2, seed=5).search(data[0], 5)
        b = RPForestIndex(data[:100], num_trees=2, seed=5).search(data[0], 5)
        assert a == b


class TestLSH:
    @pytest.fixture(scope="class")
    def lsh(self, data):
        return LSHIndex(data, num_tables=8, num_bits=10, seed=2)

    def test_self_query_found(self, lsh, data):
        res = lsh.search(data[7], 1, max_flips=0)
        assert res and res[0][1] == 7

    def test_recall_grows_with_probes(self, lsh, data, flat):
        def recall(flips):
            hits = 0
            for q in data[:20]:
                truth = {v for _, v in flat.search(q, 10)}
                got = {v for _, v in lsh.search(q, 10, max_flips=flips)}
                hits += len(truth & got)
            return hits / 200

        assert recall(2) >= recall(0) - 0.02

    def test_multi_probe_scans_more(self, lsh, data):
        lsh.search(data[0], 5, max_flips=0)
        base = lsh.last_scanned
        lsh.search(data[0], 5, max_flips=2)
        assert lsh.last_scanned >= base

    def test_validation(self, data):
        with pytest.raises(ValueError):
            LSHIndex(data, num_tables=0)
        with pytest.raises(ValueError):
            LSHIndex(data, num_bits=0)
        lsh = LSHIndex(data[:50], num_tables=2, num_bits=6)
        with pytest.raises(ValueError):
            lsh.search(data[0], 0)
        with pytest.raises(ValueError):
            lsh.search(data[0], 5, max_flips=-1)

    def test_empty_result_when_no_bucket_hits(self):
        # one point far away; query hashes elsewhere with 0 probes often —
        # guarantee graceful empty/partial results
        data = np.ones((4, 6), dtype=np.float32) * 100
        lsh = LSHIndex(data, num_tables=1, num_bits=14, seed=0)
        res = lsh.search(-100 * np.ones(6), 2, max_flips=0)
        assert isinstance(res, list)
