"""Dataset generators and ground-truth tests."""

import numpy as np
import pytest

from repro.data import DATASET_SPECS, Dataset, ground_truth, make_dataset
from repro.data.synthetic import clustered_dataset, diffuse_dataset


class TestGenerators:
    def test_all_specs_instantiate(self):
        for name in DATASET_SPECS:
            ds = make_dataset(name, n=200, num_queries=10)
            assert ds.num_data == 200
            assert ds.num_queries == 10
            assert ds.dim == DATASET_SPECS[name].dim
            assert ds.data.dtype == np.float32

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_dataset("imagenet")

    def test_deterministic_given_seed(self):
        a = make_dataset("sift", n=100, num_queries=5, seed=3)
        b = make_dataset("sift", n=100, num_queries=5, seed=3)
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.queries, b.queries)

    def test_seed_changes_data(self):
        a = make_dataset("sift", n=100, num_queries=5, seed=1)
        b = make_dataset("sift", n=100, num_queries=5, seed=2)
        assert not np.array_equal(a.data, b.data)

    def test_dimension_ordering_matches_table1(self):
        dims = {n: s.dim for n, s in DATASET_SPECS.items()}
        assert dims["sift"] < dims["glove200"] < dims["nytimes"]
        assert dims["gist"] == max(dims.values())

    def test_clustered_is_more_skewed_than_diffuse(self):
        """Mean distance to the nearest neighbor should be far smaller,
        relative to global spread, in the clustered regime."""

        def nn_ratio(ds):
            d = ds.data[:300]
            pd = ((d[:, None, :] - d[None, :, :]) ** 2).sum(-1)
            np.fill_diagonal(pd, np.inf)
            return np.sqrt(pd.min(1)).mean() / np.sqrt(
                ((d - d.mean(0)) ** 2).sum(1)
            ).mean()

        clustered = clustered_dataset(300, 32, 10, seed=0)
        diffuse = diffuse_dataset(300, 32, 10, seed=0)
        assert nn_ratio(clustered) < nn_ratio(diffuse)


class TestDatasetContainer:
    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset("x", np.zeros((3, 4), np.float32), np.zeros((2, 5), np.float32))
        with pytest.raises(ValueError):
            Dataset("x", np.zeros(3, np.float32), np.zeros((2, 3), np.float32))

    def test_ground_truth_cached(self):
        ds = make_dataset("sift", n=150, num_queries=5)
        gt1 = ds.ground_truth(5)
        gt2 = ds.ground_truth(5)
        assert gt1 is gt2
        assert gt1.shape == (5, 5)

    def test_subset(self):
        ds = make_dataset("sift", n=150, num_queries=10)
        sub = ds.subset(num_data=50, num_queries=3)
        assert sub.num_data == 50
        assert sub.num_queries == 3

    def test_size_bytes(self):
        ds = make_dataset("sift", n=100, num_queries=5)
        assert ds.size_bytes() == 100 * 128 * 4


class TestGroundTruth:
    def test_matches_argsort(self):
        rng = np.random.default_rng(8)
        data = rng.normal(size=(100, 8)).astype(np.float32)
        queries = rng.normal(size=(7, 8)).astype(np.float32)
        gt = ground_truth(data, queries, 5)
        for i, q in enumerate(queries):
            d = ((data - q) ** 2).sum(axis=1)
            np.testing.assert_array_equal(gt[i], np.argsort(d, kind="stable")[:5])

    def test_blocked_consistency(self):
        rng = np.random.default_rng(9)
        data = rng.normal(size=(60, 4)).astype(np.float32)
        queries = rng.normal(size=(11, 4)).astype(np.float32)
        a = ground_truth(data, queries, 3, block=2)
        b = ground_truth(data, queries, 3, block=100)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        data = np.zeros((5, 2), np.float32)
        q = np.zeros((1, 2), np.float32)
        with pytest.raises(ValueError):
            ground_truth(data, q, 0)
        with pytest.raises(ValueError):
            ground_truth(data, q, 6)
