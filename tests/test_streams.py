"""Stream scheduler and device-timeline tests.

Covers the pinned equivalences (StreamScheduler with one stream per
chunk == the legacy ``pipelined_time`` recurrence, bit-for-bit), the
monotonicity/lower-bound properties from the issue, and the online
:class:`DeviceTimeline` contention model.
"""

import numpy as np
import pytest

from repro.simt.pipeline import ChunkTiming, pipelined_time, synchronous_time
from repro.simt.streams import (
    DTOH,
    HTOD,
    KERNEL,
    ChunkWork,
    DeviceTimeline,
    StreamOp,
    StreamScheduler,
    copy_stream_ops,
    double_buffer_ops,
)


def random_chunks(rng, n):
    return [ChunkTiming(*rng.uniform(0.01, 2.0, size=3)) for _ in range(n)]


class TestSchedulerEquivalences:
    def test_one_stream_per_chunk_is_pipelined_time_bitwise(self):
        """The exact regression pin: with >= one stream per chunk, the
        scheduler reproduces the legacy recurrence bit-for-bit."""
        rng = np.random.default_rng(11)
        for _ in range(100):
            chunks = random_chunks(rng, int(rng.integers(1, 9)))
            expect = pipelined_time(chunks)
            for extra in (0, 1, 3):
                timeline = StreamScheduler(
                    num_streams=len(chunks) + extra
                ).schedule_chunks(chunks)
                assert timeline.makespan == expect  # bitwise, no tolerance

    def test_single_stream_serializes_to_synchronous(self):
        rng = np.random.default_rng(12)
        for _ in range(50):
            chunks = random_chunks(rng, 6)
            timeline = StreamScheduler(num_streams=1).schedule_chunks(chunks)
            assert timeline.makespan == pytest.approx(
                synchronous_time(chunks), rel=1e-12
            )

    def test_empty(self):
        timeline = StreamScheduler(num_streams=2).schedule_chunks([])
        assert timeline.makespan == 0.0
        assert timeline.ops == []


class TestSchedulerProperties:
    def test_makespan_monotone_in_streams_and_lower_bounded(self):
        """Makespan never increases with more streams and never beats
        the busiest engine (the issue's property test)."""
        rng = np.random.default_rng(13)
        for _ in range(60):
            chunks = random_chunks(rng, int(rng.integers(1, 10)))
            bound = max(
                sum(c.htod for c in chunks),
                sum(c.kernel for c in chunks),
                sum(c.dtoh for c in chunks),
            )
            prev = None
            for streams in range(1, 9):
                makespan = (
                    StreamScheduler(num_streams=streams)
                    .schedule_chunks(chunks)
                    .makespan
                )
                assert makespan >= bound - 1e-12
                if prev is not None:
                    assert makespan <= prev + 1e-15
                prev = makespan

    def test_deterministic_replay(self):
        rng = np.random.default_rng(14)
        chunks = random_chunks(rng, 7)
        a = StreamScheduler(num_streams=3).schedule_chunks(chunks)
        b = StreamScheduler(num_streams=3).schedule_chunks(chunks)
        assert [(o.start, o.finish) for o in a.ops] == [
            (o.start, o.finish) for o in b.ops
        ]

    def test_engine_busy_and_occupancy_views(self):
        chunks = [ChunkTiming(htod=0.1, kernel=1.0, dtoh=0.1)] * 4
        timeline = StreamScheduler(num_streams=4).schedule_chunks(chunks)
        assert timeline.engine_busy[KERNEL] == pytest.approx(4.0)
        assert timeline.overlap_gain() > 1.0
        assert timeline.overlap_efficiency() > 1.0
        assert 0.0 <= timeline.transfer_hidden_fraction() <= 1.0
        occupancy = timeline.stream_occupancy()
        assert set(occupancy) == {0, 1, 2, 3}
        assert all(0.0 <= v <= 1.0 for v in occupancy.values())


class TestSchedulerValidation:
    def test_rejects_bad_stream_count(self):
        with pytest.raises(ValueError):
            StreamScheduler(num_streams=0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            StreamScheduler().schedule(
                [StreamOp(0, KERNEL, -1.0, stream=0)]
            )

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            StreamScheduler().schedule([StreamOp(0, "memset", 1.0, stream=0)])

    def test_rejects_forward_dependency(self):
        ops = [StreamOp(0, KERNEL, 1.0, stream=0, deps=(1,))]
        with pytest.raises(ValueError):
            StreamScheduler().schedule(ops)

    def test_rejects_duplicate_op_id(self):
        ops = [
            StreamOp(0, HTOD, 1.0, stream=0),
            StreamOp(0, DTOH, 1.0, stream=0),
        ]
        with pytest.raises(ValueError):
            StreamScheduler().schedule(ops)


class TestOpBuilders:
    def test_double_buffer_chain_structure(self):
        chunks = [ChunkWork(0.1, 0.5, 0.1, warps=4)] * 3
        ops = double_buffer_ops(chunks, num_streams=2)
        assert len(ops) == 9
        for i in range(3):
            htod, kernel, dtoh = ops[3 * i : 3 * i + 3]
            assert (htod.kind, kernel.kind, dtoh.kind) == (HTOD, KERNEL, DTOH)
            assert htod.stream == kernel.stream == dtoh.stream == i % 2
            assert kernel.deps == (htod.op_id,)
            assert dtoh.deps == (kernel.op_id,)
            assert kernel.reads == htod.writes
            assert kernel.warps == 4

    def test_copy_stream_layout(self):
        chunks = [ChunkWork(0.1, 0.5, 0.1)] * 4
        ops = copy_stream_ops(chunks, num_streams=3)
        transfers = [op for op in ops if op.kind != KERNEL]
        kernels = [op for op in ops if op.kind == KERNEL]
        assert all(op.stream == 0 for op in transfers)
        assert all(op.stream in (1, 2) for op in kernels)
        assert all(op.deps for op in kernels)
        with pytest.raises(ValueError):
            copy_stream_ops(chunks, num_streams=1)


class TestDeviceTimeline:
    def test_single_batch_serial_equivalence(self):
        timeline = DeviceTimeline("v100", num_streams=4)
        sched = timeline.submit_batch(
            [ChunkWork(htod=1.0, kernel=5.0, dtoh=0.5, warps=8)], now=0.0
        )
        assert sched.finish_s == 6.5
        assert sched.makespan_s == sched.serial_s
        assert sched.kernel_slowdown == 1.0

    def test_small_kernels_overlap_freely(self):
        """Fig. 11's story: tiny warp demand -> concurrent batches share
        the SMs at full speed."""
        timeline = DeviceTimeline("v100", num_streams=4)
        a = timeline.submit_batch(
            [ChunkWork(htod=0.0, kernel=1.0, dtoh=0.0, warps=8)], now=0.0
        )
        b = timeline.submit_batch(
            [ChunkWork(htod=0.0, kernel=1.0, dtoh=0.0, warps=8)], now=0.0
        )
        assert a.finish_s == pytest.approx(1.0)
        assert b.finish_s == pytest.approx(1.0)  # not 2.0: full overlap
        assert b.kernel_slowdown == 1.0

    def test_capacity_saturation_slows_newcomer(self):
        timeline = DeviceTimeline("v100", num_streams=4)
        full = timeline.capacity_warps
        a = timeline.submit_batch(
            [ChunkWork(htod=0.0, kernel=1.0, dtoh=0.0, warps=full)], now=0.0
        )
        b = timeline.submit_batch(
            [ChunkWork(htod=0.0, kernel=1.0, dtoh=0.0, warps=full)], now=0.0
        )
        # Incumbent keeps its committed finish; the newcomer runs at half
        # rate while both are resident, then full speed alone.
        assert a.finish_s == pytest.approx(1.0)
        assert b.finish_s == pytest.approx(1.5)
        assert b.kernel_slowdown == pytest.approx(2.0)

    def test_copy_engines_serialize_in_order(self):
        timeline = DeviceTimeline("v100", num_streams=2)
        a = timeline.submit_batch(
            [ChunkWork(htod=1.0, kernel=0.1, dtoh=0.0)], now=0.0
        )
        b = timeline.submit_batch(
            [ChunkWork(htod=1.0, kernel=0.1, dtoh=0.0)], now=0.0
        )
        # One HtoD engine: the second batch's copy waits for the first.
        assert a.ops[0].finish == pytest.approx(1.0)
        assert b.ops[0].start == pytest.approx(1.0)

    def test_snapshot_dtoh_contends_with_results(self):
        timeline = DeviceTimeline("v100", num_streams=2)
        sched = timeline.submit_batch(
            [ChunkWork(htod=0.0, kernel=0.1, dtoh=0.5)],
            now=0.0,
            extra_dtoh_s=1.0,
        )
        # The snapshot copy occupies the DtoH engine first; the batch's
        # own result copy queues behind it.
        snapshot, _, _, dtoh = sched.ops
        assert snapshot.op.kind == DTOH
        assert snapshot.finish == pytest.approx(1.0)
        assert dtoh.start == pytest.approx(1.0)
        assert sched.finish_s == pytest.approx(1.5)

    def test_deterministic_and_validates(self):
        def run():
            timeline = DeviceTimeline("v100", num_streams=3)
            out = []
            for i in range(5):
                sched = timeline.submit_batch(
                    [ChunkWork(htod=0.01, kernel=0.2, dtoh=0.01, warps=4)] * 2,
                    now=0.05 * i,
                )
                out.append(sched.to_dict())
            return out, timeline.stats()

        assert run() == run()
        with pytest.raises(ValueError):
            DeviceTimeline("v100", num_streams=0)
        with pytest.raises(ValueError):
            DeviceTimeline("v100", num_streams=2).submit_batch([], now=-1.0)

    def test_stats_shape(self):
        timeline = DeviceTimeline("v100", num_streams=2)
        timeline.submit_batch(
            [ChunkWork(htod=0.1, kernel=1.0, dtoh=0.1, warps=4)] * 2, now=0.0
        )
        stats = timeline.stats()
        assert stats["streams"] == 2
        assert stats["batches"] == 1
        assert len(stats["stream_occupancy"]) == 2
        assert stats["overlap_efficiency"] > 0.0
        assert 0.0 <= stats["transfer_hidden_fraction"] <= 1.0


class TestPipelineIntegration:
    def test_pipeline_batch_scheduled_through_streams(
        self, small_dataset, small_graph
    ):
        from repro.core.config import SearchConfig
        from repro.core.gpu_kernel import GpuSongIndex
        from repro.simt.pipeline import pipeline_batch

        index = GpuSongIndex(small_graph, small_dataset.data)
        cfg = SearchConfig(k=10, queue_size=40)
        _, timing = pipeline_batch(index, small_dataset.queries, cfg, num_chunks=4)
        assert timing["num_streams"] == 4
        # The reported makespan is exactly the legacy recurrence.
        assert timing["pipelined_seconds"] == pipelined_time(timing["chunks"])
        assert timing["timeline"].makespan == timing["pipelined_seconds"]
        # Fewer streams than chunks: still a valid (slower or equal) plan.
        _, constrained = pipeline_batch(
            index, small_dataset.queries, cfg, num_chunks=4, num_streams=2
        )
        assert (
            constrained["pipelined_seconds"] >= timing["pipelined_seconds"] - 1e-15
        )
