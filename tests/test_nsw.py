"""NSW construction tests."""

import numpy as np
import pytest

from repro.core.algorithm1 import algorithm1_search
from repro.graphs.nsw import NSWBuilder, build_nsw


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(11)
    return rng.normal(size=(400, 10)).astype(np.float32)


class TestConstruction:
    def test_graph_is_valid(self, points):
        g = build_nsw(points, m=6, ef_construction=32)
        g.validate()
        assert g.num_vertices == len(points)
        assert g.degree == 12  # default max_degree = 2 * m

    def test_custom_max_degree(self, points):
        g = build_nsw(points, m=6, ef_construction=32, max_degree=8)
        assert g.degree == 8
        assert all(g.out_degree(v) <= 8 for v in range(g.num_vertices))

    def test_connectivity_from_entry(self, points):
        g = build_nsw(points, m=6, ef_construction=32)
        seen = {g.entry_point}
        stack = [g.entry_point]
        while stack:
            v = stack.pop()
            for u in g.neighbors(v):
                if int(u) not in seen:
                    seen.add(int(u))
                    stack.append(int(u))
        assert len(seen) == g.num_vertices, "NSW graph must be connected"

    def test_invalid_params(self, points):
        with pytest.raises(ValueError):
            NSWBuilder(points, m=0)
        with pytest.raises(ValueError):
            NSWBuilder(points, m=8, ef_construction=4)
        with pytest.raises(ValueError):
            NSWBuilder(np.empty((0, 4))).build()

    def test_shuffle_seed_changes_graph(self, points):
        g1 = build_nsw(points, m=4, ef_construction=16, seed=1)
        g2 = build_nsw(points, m=4, ef_construction=16, seed=2)
        assert not np.array_equal(g1.adjacency_array, g2.adjacency_array)

    def test_deterministic_given_seed(self, points):
        g1 = build_nsw(points, m=4, ef_construction=16, seed=5)
        g2 = build_nsw(points, m=4, ef_construction=16, seed=5)
        np.testing.assert_array_equal(g1.adjacency_array, g2.adjacency_array)


class TestSearchQuality:
    def test_search_recall_reasonable(self, points):
        """Best-first search over the NSW graph finds most true neighbors."""
        g = build_nsw(points, m=8, ef_construction=48)
        hits = total = 0
        for q in range(30):
            query = points[q]
            d = ((points - query) ** 2).sum(axis=1)
            truth = set(np.argsort(d, kind="stable")[:10].tolist())
            found = algorithm1_search(g, points, query, 10, queue_size=60)
            hits += len(truth & {v for _, v in found})
            total += 10
        assert hits / total > 0.9
