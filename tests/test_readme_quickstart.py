"""The README quickstart must work as written (smaller scale)."""

import numpy as np

from repro import GpuSongIndex, SearchConfig, SongSearcher, build_nsw


def test_readme_quickstart_flow():
    data = np.random.default_rng(0).normal(size=(800, 32)).astype(np.float32)
    graph = build_nsw(data, m=8, ef_construction=32)
    index = GpuSongIndex(graph, data, device="v100")

    config = SearchConfig(
        k=10,
        queue_size=80,
        selected_insertion=True,
        visited_deletion=True,
    )
    results, timing = index.search_batch(data[:50], config)
    assert len(results) == 50
    assert results[0][0] == (0.0, 0)  # self-query finds itself first
    assert timing.qps(50) > 0
    assert len(results[0][:3]) == 3

    # The batched-engine snippet: lockstep results match the serial loop.
    searcher = SongSearcher(graph, data)
    queries = data[:50]
    batched = searcher.search_batch(queries, config)
    serial = searcher.search_batch(queries, config, engine="serial")
    assert batched == serial
