"""SONG under inner-product and cosine metrics.

The paper notes the parallel-reduction distance stage applies to p-norm,
cosine similarity, and inner product alike; verify the whole search stack
honours the metric end to end.
"""

import numpy as np
import pytest

from repro.baselines.flat import FlatIndex
from repro.core.config import SearchConfig
from repro.core.song import SongSearcher
from repro.graphs.bruteforce_knn import build_knn_graph


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(77)
    pts = rng.normal(size=(400, 16)).astype(np.float32)
    return pts


@pytest.mark.parametrize("metric", ["ip", "cosine"])
class TestNonL2Metrics:
    def test_graph_built_on_metric_searchable(self, points, metric):
        graph = build_knn_graph(points, 10, metric=metric)
        searcher = SongSearcher(graph, points)
        flat = FlatIndex(points, metric=metric)
        cfg = SearchConfig(k=10, queue_size=80, metric=metric)
        hits = total = 0
        for q in points[:20]:
            truth = {v for _, v in flat.search(q, 10)}
            got = {v for _, v in searcher.search(q, cfg)}
            hits += len(truth & got)
            total += 10
        assert hits / total > 0.7, f"{metric} recall too low: {hits / total}"

    def test_distances_match_metric(self, points, metric):
        graph = build_knn_graph(points, 8, metric=metric)
        searcher = SongSearcher(graph, points)
        cfg = SearchConfig(k=5, queue_size=30, metric=metric)
        from repro.distances import single_distance

        q = points[0]
        for d, v in searcher.search(q, cfg):
            assert d == pytest.approx(
                single_distance(q, points[v], metric), rel=1e-4, abs=1e-6
            )

    def test_results_ascending(self, points, metric):
        graph = build_knn_graph(points, 8, metric=metric)
        searcher = SongSearcher(graph, points)
        cfg = SearchConfig(k=10, queue_size=40, metric=metric)
        res = searcher.search(points[3], cfg)
        ds = [d for d, _ in res]
        assert ds == sorted(ds)


class TestMipsUseCase:
    def test_inner_product_prefers_large_norm_vectors(self):
        """MIPS (the paper's Section IX application): vectors with large
        norms should dominate the top results for a random query."""
        rng = np.random.default_rng(5)
        pts = rng.normal(size=(300, 8)).astype(np.float32)
        pts[:10] *= 20.0  # ten huge-norm vectors
        graph = build_knn_graph(pts, 10, metric="ip")
        searcher = SongSearcher(graph, pts)
        cfg = SearchConfig(k=5, queue_size=60, metric="ip")
        q = rng.normal(size=8).astype(np.float32)
        res = searcher.search(q, cfg)
        flat = FlatIndex(pts, metric="ip")
        truth = [v for _, v in flat.search(q, 5)]
        assert len(set(v for _, v in res) & set(truth)) >= 3
