"""Paired pass/refutation tests for the Theorem 1–3 invariant checkers.

Each checker must (a) prove the unmutated implementation clean and
(b) fire on a deliberately broken variant — a checker that cannot refute
anything proves nothing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verifier.invariants import (
    check_all_invariants,
    check_bounded_queue,
    check_search_invariants,
)
from repro.core.config import SearchConfig
from repro.structures.minmax_heap import BoundedPriorityQueue, SymmetricMinMaxHeap
from repro.structures.visited import VisitedBackend


def rules(findings):
    return {f.rule for f in findings}


def _config(**overrides):
    base = dict(
        k=8,
        queue_size=12,
        bounded_queue=True,
        selected_insertion=True,
        visited_deletion=True,
        visited_backend=VisitedBackend.HASH_TABLE,
    )
    base.update(overrides)
    return SearchConfig(**base)


# -- broken structure variants the refutation tests inject -----------------


class _NeverEvicts(BoundedPriorityQueue):
    """Ignores the capacity cap: |q| grows without bound."""

    def push(self, dist, vertex):
        self._heap.push(dist, vertex)
        return None


class _EvictsMin(BoundedPriorityQueue):
    """Evicts the *minimum* on overflow — keeps the worst candidates."""

    def push(self, dist, vertex):
        if len(self._heap) < self.capacity:
            self._heap.push(dist, vertex)
            return None
        evicted = self._heap.pop_min()
        self._heap.push(dist, vertex)
        return evicted


class _NoSiftHeap(SymmetricMinMaxHeap):
    """Appends without restoring the min-max level property."""

    def push(self, dist, vertex):
        self._items.append((dist, vertex))


class _BrokenHeapQueue(BoundedPriorityQueue):
    def __init__(self, capacity):
        super().__init__(capacity)
        self._heap = _NoSiftHeap()


# -- Theorem 1: queue model check ------------------------------------------


class TestBoundedQueueCheck:
    def test_real_queue_passes(self):
        assert check_bounded_queue() == []

    def test_missing_eviction_is_refuted(self):
        findings = check_bounded_queue(queue_factory=_NeverEvicts)
        assert rules(findings) == {"invariant-bounded-queue"}
        assert any("exceeds capacity" in f.message for f in findings)

    def test_wrong_eviction_side_is_refuted(self):
        findings = check_bounded_queue(queue_factory=_EvictsMin)
        assert rules(findings) == {"invariant-bounded-queue"}

    def test_broken_heap_order_is_refuted(self):
        findings = check_bounded_queue(queue_factory=_BrokenHeapQueue)
        assert rules(findings) == {"invariant-bounded-queue"}
        assert any("level property" in f.message or "mismatch" in f.message
                   for f in findings)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_queue_matches_model_on_random_pushes(self, dists):
        """Property form of Theorem 1: after any push sequence the queue
        holds exactly the ``capacity`` smallest entries and every
        overflow eviction is the true maximum at that moment."""
        capacity = 4
        queue = BoundedPriorityQueue(capacity)
        model = []
        for i, dist in enumerate(dists):
            entry = (dist, i)
            evicted = queue.push(*entry)
            if len(model) < capacity:
                model.append(entry)
                assert evicted is None
            elif entry >= max(model):
                assert evicted == entry
            else:
                assert evicted == max(model)
                model.remove(max(model))
                model.append(entry)
            assert len(queue) <= capacity
            assert queue.to_sorted_list() == sorted(model)


# -- Theorems 1–3 over the real stage loop ---------------------------------


class TestSearchInvariants:
    def test_production_loop_passes(self):
        assert check_search_invariants(config=_config()) == []

    def test_unbounded_frontier_is_refuted(self):
        """Theorem 1 refutation: disabling the bounded queue lets |q|
        exceed K on dense neighborhoods."""
        findings = check_search_invariants(config=_config(bounded_queue=False))
        assert "invariant-bounded-queue" in rules(findings)

    def test_unselective_insertion_is_refuted(self):
        """Theorem 2 refutation: without selected insertion the loop
        enqueues candidates at distance ≥ the top-K bound."""
        findings = check_search_invariants(
            config=_config(selected_insertion=False)
        )
        assert rules(findings) == {"invariant-selected-insertion"}

    def test_missing_deletion_is_refuted(self):
        """Theorem 3 refutation: without visited deletion the filter
        outgrows 2K and stops being a subset of q ∪ topk."""
        findings = check_search_invariants(
            config=_config(visited_deletion=False)
        )
        assert rules(findings) == {"invariant-visited-deletion"}

    def test_default_entrypoint_is_clean(self):
        """What the CI gate actually runs."""
        assert check_all_invariants() == []
