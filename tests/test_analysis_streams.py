"""Stream-hazard static analysis tests (repro.analysis.streams)."""

from repro.analysis import check_stream_ops, check_stream_programs, iter_stream_programs
from repro.analysis.__main__ import run_analysis
from repro.analysis.findings import Severity
from repro.simt.streams import HTOD, KERNEL, ChunkWork, StreamOp, copy_stream_ops


CHUNKS = [ChunkWork(htod=0.1, kernel=0.5, dtoh=0.05, warps=4)] * 3


class TestHazardDetection:
    def test_registry_programs_are_clean(self):
        for name, ops in iter_stream_programs():
            findings = check_stream_ops(ops, location=name)
            assert findings == [], name

    def test_missing_events_flag_every_kernel(self):
        ops = copy_stream_ops(CHUNKS, num_streams=3, with_events=False)
        findings = check_stream_ops(ops)
        hazards = [f for f in findings if f.rule == "stream-hazard"]
        assert len(hazards) == len(CHUNKS)
        assert all(f.severity is Severity.ERROR for f in hazards)
        assert "no event dependency" in hazards[0].message

    def test_event_dependency_clears_hazard(self):
        ops = [
            StreamOp(0, HTOD, 0.1, stream=0, writes=("buf",)),
            StreamOp(1, KERNEL, 0.5, stream=1, deps=(0,), reads=("buf",)),
        ]
        assert check_stream_ops(ops) == []
        # Same program minus the event: a hazard.
        bad = [ops[0], StreamOp(1, KERNEL, 0.5, stream=1, reads=("buf",))]
        assert [f.rule for f in check_stream_ops(bad)] == ["stream-hazard"]

    def test_same_stream_order_needs_no_event(self):
        ops = [
            StreamOp(0, HTOD, 0.1, stream=2, writes=("buf",)),
            StreamOp(1, KERNEL, 0.5, stream=2, reads=("buf",)),
        ]
        assert check_stream_ops(ops) == []

    def test_transitive_ordering_is_honoured(self):
        # 0 -> 1 (event), 1 -> 2 (program order on stream 1): op 2 may
        # read what op 0 wrote with no direct edge.
        ops = [
            StreamOp(0, HTOD, 0.1, stream=0, writes=("buf",)),
            StreamOp(1, KERNEL, 0.2, stream=1, deps=(0,)),
            StreamOp(2, KERNEL, 0.5, stream=1, reads=("buf",)),
        ]
        assert check_stream_ops(ops) == []

    def test_dangling_dep_is_an_error(self):
        ops = [StreamOp(0, KERNEL, 0.5, stream=0, deps=(99,))]
        findings = check_stream_ops(ops)
        assert [f.rule for f in findings] == ["dangling-dep"]
        assert findings[0].severity is Severity.ERROR

    def test_unordered_writes_warn(self):
        ops = [
            StreamOp(0, KERNEL, 0.5, stream=0, writes=("out",)),
            StreamOp(1, KERNEL, 0.5, stream=1, writes=("out",)),
        ]
        findings = check_stream_ops(ops)
        assert [f.rule for f in findings] == ["unordered-write"]
        assert findings[0].severity is Severity.WARNING

    def test_unwritten_reads_are_device_resident_inputs(self):
        # e.g. the graph snapshot: already on the device, no producer op.
        ops = [StreamOp(0, KERNEL, 0.5, stream=1, reads=("snapshot",))]
        assert check_stream_ops(ops) == []


class TestProgramRegistry:
    def test_known_bad_program_only_with_flag(self):
        names = [name for name, _ in iter_stream_programs()]
        assert not any(name.startswith("known-bad") for name in names)
        with_bad = [name for name, _ in iter_stream_programs(include_known_bad=True)]
        assert any(name.startswith("known-bad") for name in with_bad)

    def test_check_stream_programs_gate(self):
        assert check_stream_programs() == []
        findings = check_stream_programs(include_known_bad=True)
        assert findings
        assert all(f.location.startswith("stream:known-bad") for f in findings)

    def test_device_timeline_history_is_hazard_free(self):
        programs = dict(iter_stream_programs())
        ops = programs["device-timeline-serve"]
        assert ops  # the serve replica actually emits ops
        assert check_stream_ops(ops, location="serve") == []


class TestCliGate:
    def test_verify_passes_clean(self):
        _, code = run_analysis(strict=True, sanitize=False, lint=False, verify=True)
        assert code == 0

    def test_known_bad_fails_verify(self):
        findings, code = run_analysis(
            strict=True,
            sanitize=False,
            lint=False,
            verify=True,
            include_known_bad=True,
        )
        assert code == 1
        assert any(f.rule == "stream-hazard" for f in findings)

    def test_cli_verify_only_reports_stream_findings(self, capsys):
        from repro.analysis.__main__ import main

        code = main(["--verify-only", "--strict", "--include-known-bad", "--json"])
        out = capsys.readouterr().out
        assert code == 1
        assert "stream-hazard" in out
