"""Regression tests for the serve-layer fixes surfaced by the aio
analyzer: complete teardown via gather_all, error-resolved insert
futures, and insertion-ordered task tracking."""

import asyncio

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.online import OnlineSongIndex
from repro.serve import OnlineServeEngine, Replica
from repro.serve.batcher import BatchPolicy
from repro.serve.clock import gather_all, run_virtual
from repro.serve.request import INSERT, ServeResponse
from repro.serve.server import ServerConfig, SongServer

RNG = np.random.default_rng(7)


def small_server():
    """A one-replica server over an online index (insertable write path)."""
    index = OnlineSongIndex(8, m=4, ef_construction=16)
    index.add(RNG.standard_normal((32, 8)).astype(np.float32))
    cfg = ServerConfig(
        base=SearchConfig(k=5, queue_size=16),
        batch=BatchPolicy(mode="fixed", batch_size=4, max_wait_s=0.0005),
    )
    return SongServer([Replica(OnlineServeEngine(index))], cfg)


class TestGatherAll:
    def test_runs_all_to_completion_before_raising(self):
        async def scenario():
            done = []

            async def ok(tag, delay):
                await asyncio.sleep(delay)
                done.append(tag)
                return tag

            async def boom():
                await asyncio.sleep(0.001)
                raise RuntimeError("first")

            with pytest.raises(RuntimeError, match="first"):
                # The failing awaitable finishes before the slow one; a
                # plain gather would abandon the slow task mid-flight.
                await gather_all(boom(), ok("slow", 0.5))
            return done

        assert run_virtual(scenario()) == ["slow"]

    def test_raises_first_error_in_argument_order(self):
        async def scenario():
            async def fail(msg, delay):
                await asyncio.sleep(delay)
                raise ValueError(msg)

            # "a" is listed first but fails *last*; argument order wins.
            with pytest.raises(ValueError, match="a"):
                await gather_all(fail("a", 0.5), fail("b", 0.001))

        run_virtual(scenario())

    def test_returns_results_in_order_on_success(self):
        async def scenario():
            async def val(v, delay):
                await asyncio.sleep(delay)
                return v

            return await gather_all(val(1, 0.3), val(2, 0.1), val(3, 0.2))

        assert run_virtual(scenario()) == [1, 2, 3]


class TestInsertErrorPath:
    def test_failed_insert_resolves_caller_with_error_status(self):
        async def scenario():
            server = small_server()
            await server.start()

            async def explode(payload):
                raise RuntimeError("replica down")

            # Break every replica's write path.
            for replica in server.router.replicas:
                replica.run_inserts = explode
            response = await server.submit_insert(
                RNG.standard_normal(8).astype(np.float32)
            )
            # stop() must not hang on (or re-raise from) the failed
            # task: the error was already delivered via the response.
            await server.stop()
            return response

        response = run_virtual(scenario())
        assert isinstance(response, ServeResponse)
        assert response.kind == INSERT
        assert response.status == "error"
        assert "RuntimeError" in response.error
        assert "replica down" in response.error

    def test_successful_insert_unchanged(self):
        async def scenario():
            server = small_server()
            await server.start()
            response = await server.submit_insert(
                RNG.standard_normal(8).astype(np.float32)
            )
            await server.stop()
            return response

        response = run_virtual(scenario())
        assert response.status == "ok"
        assert response.error == ""


class TestTaskTracking:
    def test_insert_tasks_tracked_in_submission_order(self):
        async def scenario():
            server = small_server()
            await server.start()
            started = []
            real_run = server._run_insert

            async def spy(request):
                started.append(request.request_id)
                await real_run(request)

            server._run_insert = spy
            ids = []
            pending = []
            for _ in range(5):
                vec = RNG.standard_normal(8).astype(np.float32)
                pending.append(asyncio.ensure_future(server.submit_insert(vec)))
                await asyncio.sleep(0)
            responses = await asyncio.gather(*pending)
            ids = [r.request_id for r in responses]
            await server.stop()
            return ids, started

        ids, started = run_virtual(scenario())
        # Dict-based tracking keeps submission order: tasks start FIFO.
        assert started == sorted(started)
        assert sorted(ids) == started

    def test_insert_task_set_drains_after_stop(self):
        async def scenario():
            server = small_server()
            await server.start()
            for _ in range(3):
                await server.submit_insert(
                    RNG.standard_normal(8).astype(np.float32)
                )
            await server.stop()
            return len(server._insert_tasks)

        assert run_virtual(scenario()) == 0

    def test_batcher_inflight_is_dict(self):
        async def scenario():
            server = small_server()
            await server.start()
            kind = type(server.batcher._inflight)
            await server.stop()
            return kind

        assert run_virtual(scenario()) is dict
