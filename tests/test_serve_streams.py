"""Multi-stream serving tests: pins, determinism, scaling, snapshots.

The three acceptance properties from the issue live here:

* ``streams=1`` is bit-identical to the pre-stream serial accounting;
* virtual-time loadtests at ``streams=4`` are deterministic
  (bit-identical ServeMetrics JSON across runs);
* ``streams=4`` beats ``streams=1`` throughput at overload under the
  same SLO with identical recall.
"""

import pytest

from repro.core.config import SearchConfig
from repro.core.online import OnlineSongIndex
from repro.core.sharding import ShardedSongIndex
from repro.serve import (
    AdmissionConfig,
    BatchPolicy,
    OnlineServeEngine,
    Replica,
    ServerConfig,
    ShardedServeEngine,
    SimulatedGpuEngine,
    build_server,
    run_loadtest,
)


@pytest.fixture(scope="module")
def served(small_dataset, small_graph):
    return small_dataset, small_graph


def make_config(policy="reject", mode="fixed", slo_ms=2.0):
    return ServerConfig(
        base=SearchConfig(k=10, queue_size=64),
        admission=AdmissionConfig(policy=policy, slo_p99_s=slo_ms / 1e3),
        batch=BatchPolicy(mode=mode, batch_size=8, max_batch=16),
    )


def loadtest(ds, graph, cfg, rate, streams, n=300, seed=3):
    return run_loadtest(
        lambda: build_server(graph, ds.data, cfg, streams=streams),
        ds.queries,
        rate_qps=rate,
        num_requests=n,
        seed=seed,
        ground_truth=ds.ground_truth(10),
    )


class TestSerialPin:
    """streams=1 must be bit-identical to the pre-stream model."""

    def test_estimate_equals_single_chunk_sum(self, served):
        ds, graph = served
        engine = SimulatedGpuEngine(graph, ds.data)
        cfg = SearchConfig(k=10, queue_size=40)
        _, stats = engine.batched.search_batch_with_stats(ds.queries, cfg)
        seconds, _ = engine.estimate_batch_seconds(ds.queries, cfg, stats)
        chunks, _ = engine.chunk_work(ds.queries, cfg, stats, num_chunks=1)
        assert len(chunks) == 1
        c = chunks[0]
        assert seconds == c.kernel + c.htod + c.dtoh  # bitwise

    def test_chunked_pricing_conserves_engine_seconds(self, served):
        """Splitting redistributes transfer bytes exactly; kernel time
        may grow (critical path per chunk) but never shrinks."""
        ds, graph = served
        engine = SimulatedGpuEngine(graph, ds.data)
        cfg = SearchConfig(k=10, queue_size=40)
        _, stats = engine.batched.search_batch_with_stats(ds.queries, cfg)
        one, _ = engine.chunk_work(ds.queries, cfg, stats, num_chunks=1)
        four, _ = engine.chunk_work(ds.queries, cfg, stats, num_chunks=4)
        lat = engine.device.pcie_latency_us * 1e-6
        assert sum(c.htod for c in four) == pytest.approx(
            one[0].htod + 3 * lat, rel=1e-9
        )
        assert sum(c.kernel for c in four) >= one[0].kernel - 1e-15
        assert sum(c.warps for c in four) == one[0].warps

    def test_serial_replica_keeps_legacy_detail(self, served):
        from repro.serve.clock import run_virtual

        ds, graph = served
        replica = Replica(SimulatedGpuEngine(graph, ds.data), streams=1)
        assert replica.timeline is None

        async def main():
            return await replica.run_batch(
                ds.queries[:4], SearchConfig(k=10, queue_size=40)
            )

        outcome = run_virtual(main())
        assert "schedule" not in outcome.detail
        assert replica.stats()["streams"] == 1
        assert "device_timeline" not in replica.stats()

    def test_streamed_replica_reports_schedule(self, served):
        from repro.serve.clock import run_virtual

        ds, graph = served
        replica = Replica(SimulatedGpuEngine(graph, ds.data), streams=4)

        async def main():
            return await replica.run_batch(
                ds.queries[:4], SearchConfig(k=10, queue_size=40)
            )

        outcome = run_virtual(main())
        sched = outcome.detail["schedule"]
        assert all(s in range(4) for s in sched["streams"])
        assert outcome.service_seconds == pytest.approx(sched["makespan_s"])
        stats = replica.stats()
        assert stats["streams"] == 4
        assert stats["device_timeline"]["batches"] == 1


class TestAutoChunks:
    def test_small_batches_stay_whole(self, served):
        ds, graph = served
        engine = SimulatedGpuEngine(graph, ds.data)
        # The smoke batches: a few KB, latency-dominated -> no split.
        assert engine.auto_num_chunks(int(ds.queries[:8].nbytes), 4) == 1
        assert engine.auto_num_chunks(0, 4) == 1
        assert engine.auto_num_chunks(1 << 20, 1) == 1

    def test_large_batches_split_toward_cap(self, served):
        ds, graph = served
        engine = SimulatedGpuEngine(graph, ds.data)
        assert engine.auto_num_chunks(1 << 30, 8) == 8
        # Monotone in bytes.
        prev = 1
        for shift in range(10, 31, 2):
            n = engine.auto_num_chunks(1 << shift, 64)
            assert n >= prev
            prev = n


class TestStreamDeterminism:
    def test_streams4_loadtest_bit_identical(self, served):
        ds, graph = served
        cfg = make_config()
        a = loadtest(ds, graph, cfg, 100_000, streams=4)
        b = loadtest(ds, graph, cfg, 100_000, streams=4)
        assert a.to_dict() == b.to_dict()
        assert a.metrics == b.metrics  # full ServeMetrics dict, bitwise


class TestStreamScaling:
    """The acceptance gate: streams=4 sustains >= 1.3x the streams=1
    throughput at overload, same SLO config, identical recall."""

    OVERLOAD_QPS = 200_000

    @pytest.fixture(scope="class")
    def reports(self, served):
        ds, graph = served
        cfg = make_config()
        return {
            s: loadtest(ds, graph, cfg, self.OVERLOAD_QPS, streams=s)
            for s in (1, 2, 4)
        }

    def test_throughput_scales(self, reports):
        assert reports[4].achieved_qps > 1.3 * reports[1].achieved_qps
        assert reports[2].achieved_qps >= reports[1].achieved_qps
        assert reports[4].achieved_qps >= reports[2].achieved_qps

    def test_latency_improves_under_overlap(self, reports):
        assert reports[4].p99_latency_s < reports[1].p99_latency_s

    def test_recall_unchanged_by_streaming(self, reports):
        # Same lockstep engine, fixed tier: results must be identical.
        assert reports[4].recall == reports[1].recall
        assert (
            reports[4].metrics["tiers"] == reports[1].metrics["tiers"]
        )

    def test_metrics_expose_overlap(self, reports):
        streams = reports[4].metrics["streams"]
        assert streams["device_batches"] > 0
        assert streams["overlap_efficiency"] > 1.0
        serial = reports[1].metrics["streams"]
        assert serial["overlap_efficiency"] == pytest.approx(1.0)


class TestSnapshotGeneration:
    def make_online(self, ds):
        index = OnlineSongIndex(dim=ds.data.shape[1], m=8, ef_construction=40)
        index.add(ds.data[:200])
        return OnlineServeEngine(index)

    def test_snapshot_cached_until_write(self, served):
        ds, _ = served
        engine = self.make_online(ds)
        cfg = SearchConfig(k=5, queue_size=32)
        engine.run_batch(ds.queries[:2], cfg)
        first = engine._snapshot_engine
        engine.run_batch(ds.queries[:2], cfg)
        assert engine._snapshot_engine is first  # no rebuild on read
        engine.index.add(ds.data[200:201])
        engine.run_batch(ds.queries[:2], cfg)
        assert engine._snapshot_engine is not first  # generation bumped

    def test_snapshot_dtoh_owed_once_per_refresh(self, served):
        ds, _ = served
        engine = self.make_online(ds)
        cfg = SearchConfig(k=5, queue_size=32)
        engine.run_batch(ds.queries[:2], cfg)
        owed = engine.consume_snapshot_dtoh_seconds()
        assert owed > 0.0
        assert engine.consume_snapshot_dtoh_seconds() == 0.0
        engine.index.add(ds.data[200:201])
        engine.run_batch(ds.queries[:2], cfg)
        assert engine.consume_snapshot_dtoh_seconds() > 0.0

    def test_streamed_replica_charges_snapshot_transfer(self, served):
        from repro.serve.clock import run_virtual

        ds, _ = served
        engine = self.make_online(ds)
        replica = Replica(engine, streams=2)

        async def main():
            return await replica.run_batch(
                ds.queries[:4], SearchConfig(k=5, queue_size=32)
            )

        outcome = run_virtual(main())
        snapshot_s = outcome.detail["snapshot_dtoh_seconds"]
        assert snapshot_s > 0.0
        # The snapshot copy delays the batch: it holds the DtoH engine
        # before the batch's own transfers, so the makespan covers it.
        assert outcome.service_seconds >= snapshot_s


class TestWiring:
    def test_sharded_engine_rejects_streams(self, served):
        ds, _ = served
        index = ShardedSongIndex(ds.data, num_shards=2)
        with pytest.raises(ValueError):
            Replica(ShardedServeEngine(index), streams=4)
        with pytest.raises(ValueError):
            Replica(ShardedServeEngine(index), streams=0)

    def test_batcher_inflight_tracks_stream_pool(self, served):
        ds, graph = served
        server = build_server(graph, ds.data, make_config(), num_replicas=2, streams=4)
        assert server.batcher.max_inflight == 8
        serial = build_server(graph, ds.data, make_config())
        assert serial.batcher.max_inflight == 1

    def test_cli_exposes_streams(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["loadtest", "--dataset", "sift", "--streams", "4"]
        )
        assert args.streams == 4
        default = parser.parse_args(["loadtest", "--dataset", "sift"])
        assert default.streams == 1
