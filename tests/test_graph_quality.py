"""Graph-quality regression floors for every builder, serial and batched.

Batched construction is recall-equivalent, not topology-identical: a
generation of points inserted together cannot link to each other, so the
batched NSW/HNSW adjacency diverges from the serial one while the search
quality over the finished graph stays on par.  These tests therefore
assert *quality floors* (graph recall for NN-descent, search recall@10
for the navigable graphs) plus a serial-vs-batched gap tolerance rather
than structural identity.

Floors are set ~0.03 under measured values at this seed/config
(everything lands at 0.98+; see benchmarks/results/BENCH_build.json for
the large-scale construction gate).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.song import SongSearcher
from repro.eval import batch_recall
from repro.graphs import HNSWIndex, build_dpg, build_nsg, build_nsw
from repro.graphs.bruteforce_knn import knn_neighbors
from repro.graphs.nn_descent import BUILD_ENGINES, graph_recall, nn_descent

N, DIM, NUM_QUERIES, K = 1000, 16, 100, 10

#: Serial and batched construction may differ by at most this much on
#: the same dataset (measured gaps are under 0.01; see module docstring).
ENGINE_GAP = 0.03


@pytest.fixture(scope="module")
def quality_data():
    rng = np.random.default_rng(0)
    data = rng.standard_normal((N, DIM)).astype(np.float32)
    queries = rng.standard_normal((NUM_QUERIES, DIM)).astype(np.float32)
    dists = ((queries[:, None, :] - data[None, :, :]) ** 2).sum(axis=-1)
    ground_truth = np.argsort(dists, axis=1, kind="stable")[:, :K]
    return data, queries, ground_truth


def _search_recall(graph, data, queries, ground_truth) -> float:
    config = SearchConfig(k=K, queue_size=64)
    results = SongSearcher(graph, data).search_batch(queries, config)
    return batch_recall(results, ground_truth)


class TestNNDescent:
    @pytest.fixture(scope="class")
    def tables(self, quality_data):
        data, _, _ = quality_data
        exact = knn_neighbors(data, K)
        return {
            engine: graph_recall(
                nn_descent(data, K, seed=0, build_engine=engine), exact
            )
            for engine in BUILD_ENGINES
        }

    @pytest.mark.parametrize("engine", BUILD_ENGINES)
    def test_recall_floor(self, tables, engine):
        assert tables[engine] >= 0.95

    def test_engines_on_par(self, tables):
        assert abs(tables["serial"] - tables["batched"]) <= ENGINE_GAP


class TestNSW:
    @pytest.fixture(scope="class")
    def recalls(self, quality_data):
        data, queries, gt = quality_data
        return {
            engine: _search_recall(
                build_nsw(data, m=8, ef_construction=48, seed=7,
                          build_engine=engine),
                data, queries, gt,
            )
            for engine in BUILD_ENGINES
        }

    @pytest.mark.parametrize("engine", BUILD_ENGINES)
    def test_recall_floor(self, recalls, engine):
        assert recalls[engine] >= 0.95

    def test_engines_on_par(self, recalls):
        assert abs(recalls["serial"] - recalls["batched"]) <= ENGINE_GAP


class TestNSG:
    @pytest.fixture(scope="class")
    def recalls(self, quality_data):
        data, queries, gt = quality_data
        return {
            engine: _search_recall(
                build_nsg(data, degree=16, knn=16, build_engine=engine),
                data, queries, gt,
            )
            for engine in BUILD_ENGINES
        }

    @pytest.mark.parametrize("engine", BUILD_ENGINES)
    def test_recall_floor(self, recalls, engine):
        assert recalls[engine] >= 0.95

    def test_engines_on_par(self, recalls):
        # batched MRNG pruning makes the same occlusion decisions as the
        # serial Algorithm 2 loop up to pair-tile floating-point order,
        # so equivalence is asserted at recall level (module docstring)
        assert abs(recalls["serial"] - recalls["batched"]) <= ENGINE_GAP


class TestDPG:
    @pytest.fixture(scope="class")
    def recalls(self, quality_data):
        data, queries, gt = quality_data
        return {
            engine: _search_recall(
                build_dpg(data, degree=16, build_engine=engine),
                data, queries, gt,
            )
            for engine in BUILD_ENGINES
        }

    @pytest.mark.parametrize("engine", BUILD_ENGINES)
    def test_recall_floor(self, recalls, engine):
        assert recalls[engine] >= 0.95

    def test_engines_on_par(self, recalls):
        # the batched undirection skips the serial path's order-dependent
        # reverse-edge cascade; parity is recall-level by design
        assert abs(recalls["serial"] - recalls["batched"]) <= ENGINE_GAP


class TestHNSW:
    @pytest.fixture(scope="class")
    def indexes(self, quality_data):
        data, _, _ = quality_data
        return {
            engine: HNSWIndex(
                data, m=8, ef_construction=48, seed=1, build_engine=engine
            ).build()
            for engine in BUILD_ENGINES
        }

    def _recall(self, index, quality_data) -> float:
        _, queries, gt = quality_data
        results = [index.search(q, K, ef=64) for q in queries]
        return batch_recall(results, gt)

    @pytest.mark.parametrize("engine", BUILD_ENGINES)
    def test_recall_floor(self, indexes, quality_data, engine):
        assert self._recall(indexes[engine], quality_data) >= 0.96

    def test_engines_on_par(self, indexes, quality_data):
        serial = self._recall(indexes["serial"], quality_data)
        batched = self._recall(indexes["batched"], quality_data)
        assert abs(serial - batched) <= ENGINE_GAP

    def test_level_assignment_matches_serial(self, indexes):
        # Levels are pre-drawn in insertion order from the same RNG, so
        # the hierarchy itself is identical across engines.
        assert indexes["serial"]._levels == indexes["batched"]._levels
