"""Graph diagnostics tests."""

import pytest

from repro.graphs.stats import bfs_hops, compute_stats, edge_length_percentiles
from repro.graphs.storage import FixedDegreeGraph


@pytest.fixture()
def chain_graph():
    # 0 -> 1 -> 2 -> 3 (directed chain)
    return FixedDegreeGraph.from_adjacency([[1], [2], [3], []], degree=1)


class TestBfs:
    def test_chain_hops(self, chain_graph):
        hops = bfs_hops(chain_graph, 0)
        assert hops == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_unreachable_excluded(self):
        g = FixedDegreeGraph.from_adjacency([[1], [0], []], degree=1)
        hops = bfs_hops(g, 0)
        assert 2 not in hops


class TestStats:
    def test_chain_stats(self, chain_graph):
        s = compute_stats(chain_graph)
        assert s.num_vertices == 4
        assert s.num_edges == 3
        assert s.min_out_degree == 0
        assert s.max_out_degree == 1
        assert s.fully_reachable
        assert s.max_hops_from_entry == 3

    def test_nsw_is_fully_reachable(self, small_graph):
        s = compute_stats(small_graph)
        assert s.fully_reachable
        assert s.mean_out_degree > 2
        assert s.max_out_degree <= s.degree_limit

    def test_nsw_diameter_is_small(self, small_graph):
        """Small-world property: hops grow ~logarithmically."""
        s = compute_stats(small_graph)
        assert s.max_hops_from_entry < 20

    def test_disconnected_flagged(self):
        g = FixedDegreeGraph.from_adjacency([[1], [0], []], degree=1)
        assert not compute_stats(g).fully_reachable


class TestEdgeLengths:
    def test_percentiles_ordered(self, small_graph, small_dataset):
        p50, p90, p99 = edge_length_percentiles(small_graph, small_dataset.data)
        assert p50 <= p90 <= p99
        assert p50 > 0

    def test_sampling_deterministic(self, small_graph, small_dataset):
        a = edge_length_percentiles(small_graph, small_dataset.data, sample=100, seed=1)
        b = edge_length_percentiles(small_graph, small_dataset.data, sample=100, seed=1)
        assert a == b
