"""Graph diagnostics tests."""

import pytest

from repro.graphs.stats import (
    bfs_hops,
    compute_stats,
    degree_distribution,
    edge_length_percentiles,
    reverse_edge_coverage,
)
from repro.graphs.storage import FixedDegreeGraph


@pytest.fixture()
def chain_graph():
    # 0 -> 1 -> 2 -> 3 (directed chain)
    return FixedDegreeGraph.from_adjacency([[1], [2], [3], []], degree=1)


class TestBfs:
    def test_chain_hops(self, chain_graph):
        hops = bfs_hops(chain_graph, 0)
        assert hops == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_unreachable_excluded(self):
        g = FixedDegreeGraph.from_adjacency([[1], [0], []], degree=1)
        hops = bfs_hops(g, 0)
        assert 2 not in hops


class TestStats:
    def test_chain_stats(self, chain_graph):
        s = compute_stats(chain_graph)
        assert s.num_vertices == 4
        assert s.num_edges == 3
        assert s.min_out_degree == 0
        assert s.max_out_degree == 1
        assert s.fully_reachable
        assert s.max_hops_from_entry == 3

    def test_nsw_is_fully_reachable(self, small_graph):
        s = compute_stats(small_graph)
        assert s.fully_reachable
        assert s.mean_out_degree > 2
        assert s.max_out_degree <= s.degree_limit

    def test_nsw_diameter_is_small(self, small_graph):
        """Small-world property: hops grow ~logarithmically."""
        s = compute_stats(small_graph)
        assert s.max_hops_from_entry < 20

    def test_disconnected_flagged(self):
        g = FixedDegreeGraph.from_adjacency([[1], [0], []], degree=1)
        assert not compute_stats(g).fully_reachable


class TestEdgeLengths:
    def test_percentiles_ordered(self, small_graph, small_dataset):
        p50, p90, p99 = edge_length_percentiles(small_graph, small_dataset.data)
        assert p50 <= p90 <= p99
        assert p50 > 0

    def test_sampling_deterministic(self, small_graph, small_dataset):
        a = edge_length_percentiles(small_graph, small_dataset.data, sample=100, seed=1)
        b = edge_length_percentiles(small_graph, small_dataset.data, sample=100, seed=1)
        assert a == b


class TestDegreeDistribution:
    def test_chain_degrees(self, chain_graph):
        d = degree_distribution(chain_graph)
        assert d["mean"] == pytest.approx(0.75)
        assert d["p100"] == 1.0
        # three of four rows are filled to the degree-1 limit
        assert d["saturated"] == pytest.approx(0.75)

    def test_saturated_graph(self, small_graph):
        d = degree_distribution(small_graph)
        assert 0.0 < d["mean"] <= small_graph.degree
        assert d["p10"] <= d["p50"] <= d["p90"] <= d["p100"]


class TestReverseEdgeCoverage:
    def test_directed_chain_uncovered(self, chain_graph):
        assert reverse_edge_coverage(chain_graph) == 0.0

    def test_symmetric_cycle_covered(self):
        g = FixedDegreeGraph.from_adjacency(
            [[1, 2], [0, 2], [0, 1]], degree=2
        )
        assert reverse_edge_coverage(g) == 1.0

    def test_mixed(self):
        # 0<->1 covered both ways; 2->0 one way only
        g = FixedDegreeGraph.from_adjacency([[1], [0], [0]], degree=1)
        assert reverse_edge_coverage(g) == pytest.approx(2 / 3)

    def test_empty_graph(self):
        g = FixedDegreeGraph.from_adjacency([[], []], degree=1)
        assert reverse_edge_coverage(g) == 0.0
