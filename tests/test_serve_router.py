"""Router, replica, and readers-writer lock tests (virtual clock)."""

import asyncio

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.serve.clock import run_virtual
from repro.serve.engine import BatchServiceResult
from repro.serve.router import AsyncRWLock, Replica, Router


class FakeEngine:
    """Engine stub with a fixed service time, recording call order."""

    def __init__(self, name="fake", service=0.01):
        self.name = name
        self.service = service
        self.calls = []

    def run_batch(self, queries, config):
        self.calls.append(len(queries))
        return BatchServiceResult(
            results=[[(0.0, 0)] for _ in range(len(queries))],
            service_seconds=self.service,
        )


class TestAsyncRWLock:
    def test_readers_share(self):
        async def main():
            lock = AsyncRWLock()
            await lock.acquire_read()
            await lock.acquire_read()  # must not block
            lock.release_read()
            lock.release_read()
            return True

        assert run_virtual(main())

    def test_writer_excludes_and_fifo_order(self):
        """r1 | w | r2 arrive in order: r2 waits behind the queued writer."""

        async def main():
            lock = AsyncRWLock()
            log = []

            async def reader(name, hold):
                await lock.acquire_read()
                log.append(("start", name))
                await asyncio.sleep(hold)
                log.append(("end", name))
                lock.release_read()

            async def writer(name, hold):
                await lock.acquire_write()
                log.append(("start", name))
                await asyncio.sleep(hold)
                log.append(("end", name))
                lock.release_write()

            t1 = asyncio.create_task(reader("r1", 0.2))
            await asyncio.sleep(0.01)
            t2 = asyncio.create_task(writer("w", 0.2))
            await asyncio.sleep(0.01)
            t3 = asyncio.create_task(reader("r2", 0.2))
            await asyncio.gather(t1, t2, t3)
            return log

        log = run_virtual(main())
        assert log == [
            ("start", "r1"), ("end", "r1"),
            ("start", "w"), ("end", "w"),
            ("start", "r2"), ("end", "r2"),
        ]

    def test_adjacent_readers_wake_together(self):
        async def main():
            lock = AsyncRWLock()
            concurrent = []

            active = 0

            async def reader():
                nonlocal active
                await lock.acquire_read()
                active += 1
                concurrent.append(active)
                await asyncio.sleep(0.1)
                active -= 1
                lock.release_read()

            await lock.acquire_write()
            tasks = [asyncio.create_task(reader()) for _ in range(3)]
            await asyncio.sleep(0.01)
            lock.release_write()
            await asyncio.gather(*tasks)
            return max(concurrent)

        assert run_virtual(main()) == 3

    def test_release_without_acquire_raises(self):
        lock = AsyncRWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestReplica:
    def test_batches_serialize_on_device(self):
        async def main():
            replica = Replica(FakeEngine(service=0.05))
            loop = asyncio.get_running_loop()
            cfg = SearchConfig(k=1, queue_size=4)
            q = np.zeros((2, 4), dtype=np.float32)
            start = loop.time()
            await asyncio.gather(
                replica.run_batch(q, cfg), replica.run_batch(q, cfg)
            )
            return loop.time() - start, replica.stats()

        elapsed, stats = run_virtual(main())
        # two 50 ms batches on one device must take ~100 ms, not ~50
        assert elapsed == pytest.approx(0.1, rel=1e-6)
        assert stats["batches"] == 2
        assert stats["busy_seconds"] == pytest.approx(0.1)

    def test_non_online_replica_rejects_inserts(self):
        async def main():
            replica = Replica(FakeEngine())
            with pytest.raises(RuntimeError):
                await replica.run_inserts(np.zeros((1, 4), dtype=np.float32))
            return True

        assert run_virtual(main())


class TestRouter:
    def make_replicas(self, n=3):
        return [Replica(FakeEngine(name=f"e{i}")) for i in range(n)]

    def test_validation(self):
        with pytest.raises(ValueError):
            Router([])
        with pytest.raises(ValueError):
            Router(self.make_replicas(), policy="nope")

    def test_round_robin_rotation(self):
        router = Router(self.make_replicas(), policy="round-robin")
        names = [router.pick().name for _ in range(6)]
        assert names == ["e0", "e1", "e2", "e0", "e1", "e2"]

    def test_least_loaded_prefers_idle_replica(self):
        replicas = self.make_replicas()
        router = Router(replicas)
        replicas[0].pending_batches = 2
        replicas[1].pending_batches = 1
        assert router.pick().name == "e2"
        replicas[2].pending_batches = 5
        assert router.pick().name == "e1"

    def test_least_loaded_tie_breaks_by_index(self):
        router = Router(self.make_replicas())
        assert router.pick().name == "e0"

    def test_pick_writable_requires_online_engine(self):
        router = Router(self.make_replicas())
        with pytest.raises(RuntimeError):
            router.pick_writable()

    def test_two_replicas_double_throughput(self):
        """The router overlaps batches across devices."""

        async def main2():
            cfg = SearchConfig(k=1, queue_size=4)
            q = np.zeros((2, 4), dtype=np.float32)
            loop = asyncio.get_running_loop()

            async def timed(n):
                router = Router(
                    [Replica(FakeEngine(name=f"e{i}", service=0.05)) for i in range(n)]
                )

                async def one():
                    replica = router.pick()
                    await replica.run_batch(q, cfg)

                start = loop.time()
                await asyncio.gather(*(one() for _ in range(4)))
                return loop.time() - start

            return await timed(1), await timed(2)

        one_dev, two_dev = run_virtual(main2())
        assert one_dev == pytest.approx(0.2, rel=1e-6)
        assert two_dev == pytest.approx(0.1, rel=1e-6)
