"""Device-layout structures: equivalence with the high-level versions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.device_layout import FlatHashSet, FlatMinMaxHeap
from repro.structures.hash_table import OpenAddressingSet
from repro.structures.minmax_heap import SymmetricMinMaxHeap

entries = st.lists(
    st.tuples(
        st.floats(min_value=-1e5, max_value=1e5, allow_nan=False, width=32),
        st.integers(min_value=0, max_value=2**23),
    ),
    max_size=100,
)
keys = st.integers(min_value=0, max_value=10**6)


class TestFlatMinMaxHeap:
    def test_capacity_enforced(self):
        h = FlatMinMaxHeap(2)
        h.push(1.0, 1)
        h.push(2.0, 2)
        with pytest.raises(OverflowError):
            h.push(3.0, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlatMinMaxHeap(0)
        with pytest.raises(ValueError):
            FlatMinMaxHeap(4, storage=np.zeros((3, 2), dtype=np.float32))
        h = FlatMinMaxHeap(2)
        with pytest.raises(IndexError):
            h.pop_min()
        with pytest.raises(IndexError):
            h.pop_max()
        with pytest.raises(IndexError):
            h.peek_min()
        with pytest.raises(IndexError):
            h.peek_max()

    def test_memory_is_8_bytes_per_slot(self):
        """The layout the shared-memory budget assumes."""
        assert FlatMinMaxHeap(50).memory_bytes() == 50 * 8

    def test_external_storage(self):
        slab = np.zeros((4, 2), dtype=np.float32)
        h = FlatMinMaxHeap(4, storage=slab)
        h.push(5.0, 3)
        assert slab[0, 0] == 5.0  # writes land in the caller's slab

    @settings(max_examples=80, deadline=None)
    @given(items=entries)
    def test_matches_reference_pop_min(self, items):
        flat = FlatMinMaxHeap(max(1, len(items)))
        ref = SymmetricMinMaxHeap()
        for d, v in items:
            flat.push(d, v)
            ref.push(np.float32(d), v)
        for _ in items:
            assert flat.pop_min() == ref.pop_min()

    @settings(max_examples=80, deadline=None)
    @given(items=entries, ops=st.lists(st.booleans(), max_size=100))
    def test_matches_reference_interleaved(self, items, ops):
        flat = FlatMinMaxHeap(max(1, len(items)))
        ref = SymmetricMinMaxHeap()
        for d, v in items:
            flat.push(d, v)
            ref.push(np.float32(d), v)
        for take_min in ops:
            if not len(ref):
                break
            if take_min:
                assert flat.pop_min() == ref.pop_min()
            else:
                assert flat.pop_max() == ref.pop_max()


class TestFlatHashSet:
    def test_basics(self):
        s = FlatHashSet(16)
        assert s.insert(5)
        assert not s.insert(5)
        assert s.contains(5)
        assert s.delete(5)
        assert not s.contains(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlatHashSet(0)
        s = FlatHashSet(4)
        for op in (s.insert, s.contains, s.delete):
            with pytest.raises(ValueError):
                op(-1)

    def test_overflow(self):
        s = FlatHashSet(3)
        for i in range(3):
            s.insert(i)
        with pytest.raises(OverflowError):
            s.insert(99)

    def test_memory_4_bytes_per_slot(self):
        s = FlatHashSet(100)
        n_slots = s.memory_bytes() // 4
        assert n_slots & (n_slots - 1) == 0

    @settings(max_examples=80, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["add", "del", "has"]), keys), max_size=200
        )
    )
    def test_matches_reference(self, ops):
        flat = FlatHashSet(256)
        ref = OpenAddressingSet(256)
        for op, k in ops:
            if op == "add" and len(ref) < 256:
                assert flat.insert(k) == ref.insert(k)
            elif op == "del":
                assert flat.delete(k) == ref.delete(k)
            elif op == "has":
                assert flat.contains(k) == ref.contains(k)
        assert len(flat) == len(ref)
