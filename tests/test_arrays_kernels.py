"""End-to-end array-verifier runs over the real annotated kernels.

The acceptance bar for the third analysis engine: the default registry
(every ``@array_kernel`` in the hot modules) verifies clean under
strict mode, the packed-key int64 obligations are *proven* (not merely
un-flagged), and each known-bad fixture still trips its rule — the
negative control that keeps the gate honest.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.arrays import (
    ANNOTATED_MODULES,
    check_arrays,
    load_baseline,
    verify_array_kernels,
)
from repro.annotations import iter_array_annotations

REPO_ROOT = Path(__file__).resolve().parent.parent

FIXTURE_RULES = {
    "bad_pack_overflow": "packed-key-overflow",
    "bad_aliased_scatter": "inplace-aliasing",
    "bad_unstable_tiebreak": "nondet-sort",
    "bad_broadcast": "broadcast-mismatch",
    "bad_oob_gather": "fancy-index-oob",
}


class TestDefaultRegistry:
    def test_annotated_module_floor(self):
        assert len(ANNOTATED_MODULES) >= 8

    def test_registry_is_clean(self):
        findings = check_arrays()
        assert findings == [], [f.format() for f in findings]

    def test_kernel_and_proof_floors(self):
        findings, proven, kernels = verify_array_kernels()
        assert findings == [], [f.format() for f in findings]
        assert kernels >= 15
        # Every migrated pack_rowid/pack_keys site discharges its int64
        # obligation as a *proof*, not an absence of findings.
        pack_proofs = [p for p in proven if "int64" in p]
        assert len(pack_proofs) >= 10, proven

    def test_bare_argsort_in_dpg_is_proven_deterministic(self):
        _, proven, _ = verify_array_kernels()
        assert any(
            "dpg.py" in p and "argsort" in p and "duplicate-free" in p
            for p in proven
        ), proven

    def test_every_annotated_module_registers_kernels(self):
        check_arrays()  # imports ANNOTATED_MODULES
        by_module = {m: 0 for m in ANNOTATED_MODULES}
        for ann in iter_array_annotations(registry="default"):
            if ann.module in by_module:
                by_module[ann.module] += 1
        missing = [m for m, count in by_module.items() if count == 0]
        assert not missing, missing


class TestKnownBadFixtures:
    @pytest.fixture(scope="class")
    def bad_findings(self):
        return check_arrays(include_known_bad=True)

    @pytest.mark.parametrize("kernel,rule", sorted(FIXTURE_RULES.items()))
    def test_fixture_trips_its_rule(self, bad_findings, kernel, rule):
        hits = [
            f
            for f in bad_findings
            if kernel in f.message and f.rule == rule
        ]
        assert hits, [f.format() for f in bad_findings]

    def test_overflow_counterexample_is_minimal(self, bad_findings):
        overflow = [
            f
            for f in bad_findings
            if f.rule == "packed-key-overflow" and "bad_pack_overflow" in f.message
        ]
        assert any("n=3037000500" in f.message for f in overflow), [
            f.message for f in overflow
        ]

    def test_fixtures_all_fail_severity_gate(self, bad_findings):
        # Every fixture must fail under --strict: errors outright, the
        # tie-break fixture via its strict-failing warning.
        severities = {f.severity.value for f in bad_findings}
        assert "error" in severities


class TestBaseline:
    def test_committed_baseline_is_empty_and_valid(self):
        path = REPO_ROOT / "scripts" / "analysis_baseline.json"
        assert load_baseline(path) == []

    def test_stale_entry_warns(self, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text(
            json.dumps(
                {
                    "suppress": [
                        {"rule": "packed-key-overflow", "location": "gone.py:1"}
                    ]
                }
            )
        )
        findings = check_arrays(baseline=baseline)
        assert [f.rule for f in findings] == ["stale-baseline"]

    def test_baseline_suppresses_matching_finding(self, tmp_path):
        dirty = check_arrays(include_known_bad=True)
        target = next(f for f in dirty if f.rule == "broadcast-mismatch")
        baseline = tmp_path / "base.json"
        baseline.write_text(
            json.dumps(
                {
                    "suppress": [
                        {"rule": target.rule, "location": target.location}
                    ]
                }
            )
        )
        suppressed = check_arrays(include_known_bad=True, baseline=baseline)
        assert not any(
            f.rule == "broadcast-mismatch" and f.location == target.location
            for f in suppressed
        )
        assert not any(f.rule == "stale-baseline" for f in suppressed)

    def test_malformed_baseline_rejected(self, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({"suppress": [{"rule": "x"}]}))
        with pytest.raises(ValueError):
            load_baseline(baseline)


class TestCIGate:
    def test_ci_runs_arrays_strict_with_baseline(self):
        ci = (REPO_ROOT / "scripts" / "ci.sh").read_text()
        assert "--arrays-only --strict" in ci
        assert "scripts/analysis_baseline.json" in ci

    def test_ci_has_arrays_negative_control(self):
        ci = (REPO_ROOT / "scripts" / "ci.sh").read_text()
        assert "--arrays-only --strict --include-known-bad" in ci


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
