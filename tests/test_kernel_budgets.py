"""Shared-memory budget drift detection.

Each registered kernel declares ``shared_words``, the budget the OOB
checker proves against.  These tests pin the relationship: the proof
holds at the declared budget, and shrinking the budget below the
statically derived address span makes verification fail.  If someone
grows a kernel's shared footprint without growing the declaration (or
vice versa), this is the test that moves.
"""

from dataclasses import replace

import pytest

from repro.analysis.registry import iter_kernel_specs, verify_kernel

REGISTRY = list(iter_kernel_specs())
SHARED_USERS = [
    s for s in REGISTRY if verify_kernel(s).shared_span is not None
]


@pytest.mark.parametrize("spec", REGISTRY, ids=lambda s: s.name)
def test_declared_budget_is_proven(spec):
    report = verify_kernel(spec)
    assert report.ok, [f.format() for f in report.findings]


@pytest.mark.parametrize("spec", REGISTRY, ids=lambda s: s.name)
def test_span_fits_declared_budget(spec):
    """The derived footprint never exceeds (nor silently outgrows) the
    declaration: span ⊆ [0, shared_words)."""
    report = verify_kernel(spec)
    if report.shared_span is None:  # kernel touches no shared memory
        return
    assert report.shared_span.lo >= 0.0
    assert report.shared_span.hi <= spec.shared_words - 1, (
        f"{spec.name}: static footprint {report.shared_span} exceeds the "
        f"declared budget of {spec.shared_words} words"
    )


@pytest.mark.parametrize("spec", SHARED_USERS, ids=lambda s: s.name)
def test_shrunk_budget_is_rejected(spec):
    """Catches silent budget drift: if the declaration shrank below the
    kernel's real footprint, --verify --strict would fail, not pass."""
    span_hi = verify_kernel(spec).shared_span.hi
    shrunk = replace(spec, shared_words=int(span_hi))  # one word short
    report = verify_kernel(shrunk)
    assert any(f.rule == "static-oob-shared" for f in report.findings), (
        f"{spec.name}: budget {int(span_hi)} < footprint hi {span_hi} "
        "was not flagged"
    )


def test_some_kernels_exercise_shared_memory():
    """Guard the guard: the shrink test must not be vacuously empty."""
    assert len(SHARED_USERS) >= 3
