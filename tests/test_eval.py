"""Evaluation harness tests: recall, sweeps, interpolation, reports."""

import numpy as np
import pytest

from repro.core.cpu_song import CpuSongIndex
from repro.core.gpu_kernel import GpuSongIndex
from repro.eval.recall import batch_recall, recall_at_k
from repro.eval.report import format_curve, format_speedup_table, format_table
from repro.eval.sweep import (
    SweepPoint,
    qps_at_recall,
    sweep_cpu_song,
    sweep_gpu_song,
    sweep_hnsw,
)
from repro.graphs.hnsw import HNSWIndex


class TestRecall:
    def test_recall_at_k(self):
        assert recall_at_k([1, 2, 3], [1, 2, 4]) == pytest.approx(2 / 3)
        assert recall_at_k([], [1]) == 0.0
        assert recall_at_k([5, 6], [5, 6]) == 1.0

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k([1], [])

    def test_batch_recall(self):
        results = [[(0.1, 1), (0.2, 2)], [(0.3, 9), (0.4, 8)]]
        gt = np.array([[1, 2], [8, 7]])
        assert batch_recall(results, gt) == pytest.approx((1.0 + 0.5) / 2)

    def test_batch_recall_length_mismatch(self):
        with pytest.raises(ValueError):
            batch_recall([[(0.0, 1)]], np.zeros((2, 1), dtype=int))


class TestInterpolation:
    def _points(self):
        return [
            SweepPoint(param=10, recall=0.5, qps=1000.0),
            SweepPoint(param=20, recall=0.8, qps=400.0),
            SweepPoint(param=40, recall=0.95, qps=100.0),
        ]

    def test_exact_hit(self):
        assert qps_at_recall(self._points(), 0.8) == pytest.approx(400.0)

    def test_interpolated_between(self):
        q = qps_at_recall(self._points(), 0.65)
        assert 400.0 < q < 1000.0

    def test_unreachable_returns_none(self):
        assert qps_at_recall(self._points(), 0.99) is None

    def test_below_first_point(self):
        assert qps_at_recall(self._points(), 0.1) == pytest.approx(1000.0)

    def test_empty(self):
        assert qps_at_recall([], 0.5) is None


class TestSweeps:
    def test_gpu_sweep_recall_monotone_ish(self, small_dataset, small_graph):
        idx = GpuSongIndex(small_graph, small_dataset.data)
        pts = sweep_gpu_song(small_dataset, idx, [10, 40, 120], k=10)
        assert len(pts) == 3
        assert pts[-1].recall >= pts[0].recall
        assert pts[0].qps >= pts[-1].qps * 0.8  # more work -> lower QPS

    def test_cpu_sweep(self, small_dataset, small_graph):
        idx = CpuSongIndex(small_graph, small_dataset.data)
        pts = sweep_cpu_song(small_dataset, idx, [10, 60], k=10)
        assert pts[1].recall >= pts[0].recall

    def test_hnsw_sweep(self, small_dataset):
        hnsw = HNSWIndex(small_dataset.data, m=8, ef_construction=40, seed=1).build()
        pts = sweep_hnsw(small_dataset, hnsw, [10, 60], k=10)
        assert pts[1].recall >= pts[0].recall
        assert all(p.qps > 0 for p in pts)

    def test_sweep_point_row(self):
        p = SweepPoint(param=1, recall=0.5, qps=2.0, extra={"x": 3})
        assert p.as_row() == {"param": 1, "recall": 0.5, "qps": 2.0, "x": 3}


class TestReports:
    def test_format_curve(self):
        pts = [SweepPoint(10, 0.5, 100.0), SweepPoint(20, 0.9, 50.0)]
        text = format_curve("SONG", pts)
        assert "SONG" in text
        assert "0.5000" in text

    def test_format_table_na(self):
        text = format_table("T", ["a", "b"], [[1, None], [2.5, 3.0]])
        assert "N/A" in text
        assert "2.50" in text

    def test_speedup_table(self):
        text = format_speedup_table(
            "Table II", [0.5, 0.9], {"sift": [5.9, None], "gist": [4.8, 7.7]}
        )
        assert "sift" in text and "N/A" in text and "0.5" in text
