"""Stream-pipelining extension tests."""

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.core.gpu_kernel import GpuSongIndex
from repro.simt.pipeline import (
    ChunkTiming,
    pipeline_batch,
    pipelined_time,
    split_counts,
    synchronous_time,
)


class TestSchedule:
    def test_empty(self):
        assert pipelined_time([]) == 0.0
        assert synchronous_time([]) == 0.0

    def test_single_chunk_no_gain(self):
        chunks = [ChunkTiming(htod=1.0, kernel=5.0, dtoh=0.5)]
        assert pipelined_time(chunks) == pytest.approx(6.5)
        assert synchronous_time(chunks) == pytest.approx(6.5)

    def test_perfect_overlap_kernel_bound(self):
        """With kernels >> transfers, total ≈ first HtoD + all kernels +
        last DtoH."""
        chunks = [ChunkTiming(htod=0.1, kernel=5.0, dtoh=0.1)] * 4
        t = pipelined_time(chunks)
        assert t == pytest.approx(0.1 + 4 * 5.0 + 0.1)
        assert synchronous_time(chunks) == pytest.approx(4 * 5.2)

    def test_transfer_bound_pipelines_to_copy_engine(self):
        chunks = [ChunkTiming(htod=5.0, kernel=0.1, dtoh=0.1)] * 3
        t = pipelined_time(chunks)
        assert t == pytest.approx(15.0 + 0.2, abs=0.05)

    def test_never_worse_than_synchronous(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            chunks = [
                ChunkTiming(*rng.uniform(0.01, 2.0, size=3)) for _ in range(6)
            ]
            assert pipelined_time(chunks) <= synchronous_time(chunks) + 1e-12

    def test_never_better_than_critical_engine(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            chunks = [
                ChunkTiming(*rng.uniform(0.01, 2.0, size=3)) for _ in range(6)
            ]
            t = pipelined_time(chunks)
            assert t >= sum(c.kernel for c in chunks) - 1e-12
            assert t >= sum(c.htod for c in chunks) - 1e-12

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pipelined_time([ChunkTiming(htod=-1, kernel=1, dtoh=1)])


class TestSplit:
    def test_even_split(self):
        assert split_counts(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread(self):
        assert split_counts(10, 3) == [4, 3, 3]

    def test_more_chunks_than_items(self):
        assert split_counts(2, 5) == [1, 1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_counts(10, 0)


class TestPipelineBatch:
    def test_results_identical_to_sync(self, small_dataset, small_graph):
        index = GpuSongIndex(small_graph, small_dataset.data)
        cfg = SearchConfig(k=10, queue_size=40)
        piped, timing = pipeline_batch(index, small_dataset.queries, cfg, num_chunks=4)
        sync, _ = index.search_batch(small_dataset.queries, cfg)
        assert [[v for _, v in r] for r in piped] == [
            [v for _, v in r] for r in sync
        ]
        assert timing["overlap_gain"] >= 1.0

    def test_gain_reported(self, small_dataset, small_graph):
        index = GpuSongIndex(small_graph, small_dataset.data)
        cfg = SearchConfig(k=10, queue_size=40)
        _, timing = pipeline_batch(index, small_dataset.queries, cfg, num_chunks=4)
        assert timing["pipelined_seconds"] <= timing["synchronous_seconds"]
        assert timing["qps"] > 0
        assert len(timing["chunks"]) == 4
