"""Out-of-core tier behind the serving stack: router, ladder, streams."""

import numpy as np
import pytest

from repro.core.config import SearchConfig
from repro.eval.recall import batch_recall
from repro.eval.serving import sweep_serving
from repro.serve import (
    AdmissionConfig,
    BatchPolicy,
    Replica,
    ServerConfig,
    build_server,
    run_loadtest,
)
from repro.simt.device import get_device
from repro.tiered import TieredConfig, TieredServeEngine

TIER = TieredConfig(num_bits=128, overfetch=8, page_rows=16, cache_pages=4)


def make_config(policy="reject", mode="fixed", slo_ms=50.0):
    return ServerConfig(
        base=SearchConfig(k=10, queue_size=100),
        admission=AdmissionConfig(policy=policy, slo_p99_s=slo_ms / 1e3),
        batch=BatchPolicy(mode=mode, batch_size=8, max_batch=16),
    )


def tier_loadtest(ds, graph, cfg, rate, prefetch=True, streams=1, n=120):
    return run_loadtest(
        lambda: build_server(
            graph,
            ds.data,
            cfg,
            streams=streams,
            tier=TIER,
            prefetch=prefetch,
        ),
        ds.queries,
        rate_qps=rate,
        num_requests=n,
        seed=3,
        ground_truth=ds.ground_truth(10),
    )


class TestTieredReplica:
    def test_build_server_routes_through_tier(self, small_dataset, small_graph):
        server = build_server(
            small_graph, small_dataset.data, make_config(), tier=TIER
        )
        engines = [r.engine for r in server.router.replicas]
        assert all(isinstance(e, TieredServeEngine) for e in engines)

    def test_loadtest_completes_with_tier_recall(
        self, small_dataset, small_graph
    ):
        report = tier_loadtest(small_dataset, small_graph, make_config(), 2000)
        assert report.completed == 120
        assert report.shed == 0
        # Same batch engine underneath: serving recall equals the
        # engine's own recall on the same config.
        engine = TieredServeEngine(small_graph, small_dataset.data, TIER)
        direct = engine.run_batch(
            small_dataset.queries, SearchConfig(k=10, queue_size=100)
        )
        direct_recall = batch_recall(
            direct.results, small_dataset.ground_truth(10)
        )
        assert report.recall == pytest.approx(direct_recall, abs=1e-9)

    def test_prefetch_does_not_change_served_results(
        self, small_dataset, small_graph
    ):
        cfg = make_config()
        a = tier_loadtest(small_dataset, small_graph, cfg, 2000, prefetch=True)
        b = tier_loadtest(small_dataset, small_graph, cfg, 2000, prefetch=False)
        assert a.recall == b.recall
        # ... but prefetch serves the same load strictly faster.
        assert a.duration_s < b.duration_s

    def test_deterministic_replay(self, small_dataset, small_graph):
        cfg = make_config()
        a = tier_loadtest(small_dataset, small_graph, cfg, 3000)
        b = tier_loadtest(small_dataset, small_graph, cfg, 3000)
        assert a.to_dict() == b.to_dict()


class TestLadderInteraction:
    def test_degradation_shrinks_overfetch_panel(
        self, small_dataset, small_graph
    ):
        """Under overload the ladder degrades queue_size, which bounds
        the over-fetch panel — recall drops but requests keep completing."""
        cfg = make_config(policy="degrade", mode="adaptive", slo_ms=2.0)
        report = tier_loadtest(
            small_dataset, small_graph, cfg, 200_000, n=200
        )
        assert report.degraded_fraction > 0.0
        assert report.completed > 0
        tiers = report.metrics["tiers"]
        assert any(int(t) > 0 for t in tiers)  # degraded tiers were used

    def test_streams_leave_results_identical(self, small_dataset, small_graph):
        cfg = make_config()
        one = tier_loadtest(small_dataset, small_graph, cfg, 3000, streams=1)
        two = tier_loadtest(small_dataset, small_graph, cfg, 3000, streams=2)
        assert one.recall == two.recall


class TestBudgetedServing:
    def test_tier_serves_under_budget_full_precision_cannot(
        self, small_dataset, small_graph
    ):
        from repro.serve.engine import SimulatedGpuEngine
        from repro.simt.memory import DeviceMemoryExceeded
        from repro.tiered import TieredIndex

        sizing = TieredIndex(small_graph, small_dataset.data, TIER)
        dev = get_device("v100").with_overrides(
            memory_budget_gb=sizing.resident_bytes * 1.1 / float(1024**3)
        )
        with pytest.raises(DeviceMemoryExceeded):
            SimulatedGpuEngine(small_graph, small_dataset.data, device=dev)
        engine = TieredServeEngine(
            small_graph, small_dataset.data, TIER, device=dev
        )
        out = engine.run_batch(
            small_dataset.queries, SearchConfig(k=10, queue_size=64)
        )
        assert len(out.results) == small_dataset.num_queries
        assert out.detail["tier"]["resident_bytes"] <= dev.memory_bytes


class TestSweepServingTier:
    def test_sweep_accepts_tier(self, small_dataset, small_graph):
        series = sweep_serving(
            small_graph,
            small_dataset.data,
            small_dataset.queries,
            rates=[2000.0],
            base=SearchConfig(k=10, queue_size=100),
            slo_p99_s=0.05,
            num_requests=60,
            seed=3,
            ground_truth=small_dataset.ground_truth(10),
            policies=("fixed",),
            tier=TIER,
        )
        point = series["fixed"][0]
        assert point.completed == 60
        assert point.recall is not None
