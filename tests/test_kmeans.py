"""k-means substrate tests."""

import numpy as np
import pytest

from repro.baselines.kmeans import assign, kmeans, kmeans_pp_init


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(7)
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    pts = np.vstack(
        [c + 0.3 * rng.standard_normal((60, 2)) for c in centers]
    )
    return pts, centers


class TestKMeans:
    def test_recovers_well_separated_blobs(self, blobs):
        pts, true_centers = blobs
        centroids, labels = kmeans(pts, 3, seed=0)
        # each found centroid should be near one true center
        for c in centroids:
            dists = ((true_centers - c) ** 2).sum(axis=1)
            assert dists.min() < 1.0

    def test_labels_match_nearest_centroid(self, blobs):
        pts, _ = blobs
        centroids, labels = kmeans(pts, 3, seed=0)
        np.testing.assert_array_equal(labels, assign(pts, centroids))

    def test_deterministic_given_seed(self, blobs):
        pts, _ = blobs
        c1, l1 = kmeans(pts, 3, seed=42)
        c2, l2 = kmeans(pts, 3, seed=42)
        np.testing.assert_array_equal(l1, l2)
        np.testing.assert_allclose(c1, c2)

    def test_k_validation(self, blobs):
        pts, _ = blobs
        with pytest.raises(ValueError):
            kmeans(pts, 0)
        with pytest.raises(ValueError):
            kmeans(pts, len(pts) + 1)

    def test_no_empty_clusters(self, blobs):
        pts, _ = blobs
        _, labels = kmeans(pts, 10, seed=1)
        assert len(set(labels.tolist())) == 10

    def test_k_equals_n(self):
        pts = np.arange(12, dtype=np.float64).reshape(6, 2)
        centroids, labels = kmeans(pts, 6, seed=0)
        assert sorted(labels.tolist()) == list(range(6))

    def test_inertia_decreases_vs_random_init(self, blobs):
        pts, _ = blobs
        centroids, labels = kmeans(pts, 3, seed=0)
        inertia = ((pts - centroids[labels]) ** 2).sum()
        rng = np.random.default_rng(0)
        random_c = pts[rng.choice(len(pts), 3, replace=False)]
        random_inertia = ((pts - random_c[assign(pts, random_c)]) ** 2).sum()
        assert inertia <= random_inertia + 1e-9


class TestInit:
    def test_pp_init_spreads_centroids(self, blobs):
        pts, _ = blobs
        rng = np.random.default_rng(0)
        init = kmeans_pp_init(pts, 3, rng)
        # k-means++ on 3 tight blobs should pick one point from each blob
        pair_d = ((init[:, None, :] - init[None, :, :]) ** 2).sum(-1)
        np.fill_diagonal(pair_d, np.inf)
        assert pair_d.min() > 25.0

    def test_assign_blocked_matches(self, blobs):
        pts, _ = blobs
        centroids, _ = kmeans(pts, 3, seed=0)
        np.testing.assert_array_equal(
            assign(pts, centroids, block=7), assign(pts, centroids, block=10_000)
        )
