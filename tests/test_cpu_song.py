"""CPU SONG variant and CPU machine model tests."""

import pytest

from repro.core.config import SearchConfig
from repro.core.cpu_song import CpuSongIndex
from repro.core.machine import DEFAULT_CPU, TUNED_CPU, CpuModel
from repro.distances import OpCounter
from repro.eval.recall import batch_recall


class TestCpuModel:
    def test_seconds_positive_for_work(self):
        c = OpCounter()
        c.distance_flops = 10**7
        c.queue_ops = 100
        assert DEFAULT_CPU.seconds(c) > 0

    def test_zero_work_zero_time(self):
        assert DEFAULT_CPU.seconds(OpCounter()) == 0.0

    def test_tuned_model_faster(self):
        c = OpCounter()
        c.distance_flops = 10**8
        c.queue_ops = 10_000
        c.hash_ops = 10_000
        assert TUNED_CPU.seconds(c) < DEFAULT_CPU.seconds(c)

    def test_memory_term(self):
        c = OpCounter()
        t0 = DEFAULT_CPU.seconds(c, bytes_read=0)
        t1 = DEFAULT_CPU.seconds(c, bytes_read=10**9)
        assert t1 > t0


class TestCpuSongIndex:
    @pytest.fixture(scope="class")
    def index(self, small_dataset, small_graph):
        return CpuSongIndex(small_graph, small_dataset.data)

    def test_single_query(self, index, small_dataset):
        cfg = SearchConfig(k=10, queue_size=40)
        res, seconds = index.search(small_dataset.queries[0], cfg)
        assert len(res) == 10
        assert seconds > 0

    def test_batch_recall(self, index, small_dataset):
        cfg = SearchConfig(k=10, queue_size=80)
        batch = index.search_batch(small_dataset.queries, cfg)
        gt = small_dataset.ground_truth(10)
        assert batch_recall(batch.results, gt) > 0.8
        assert batch.qps() > 0

    def test_batch_seconds_scale_with_queries(self, index, small_dataset):
        cfg = SearchConfig(k=10, queue_size=40)
        t5 = index.search_batch(small_dataset.queries[:5], cfg).seconds
        t20 = index.search_batch(small_dataset.queries[:20], cfg).seconds
        assert t20 > t5

    def test_counter_exposed(self, index, small_dataset):
        cfg = SearchConfig(k=5, queue_size=20)
        batch = index.search_batch(small_dataset.queries[:3], cfg)
        assert batch.counter.distance_calls > 0

    def test_custom_model(self, small_dataset, small_graph):
        slow = CpuModel(name="slow", flops_per_second=1e8, seq_op_seconds=1e-6)
        fast_idx = CpuSongIndex(small_graph, small_dataset.data, model=TUNED_CPU)
        slow_idx = CpuSongIndex(small_graph, small_dataset.data, model=slow)
        cfg = SearchConfig(k=5, queue_size=20)
        _, t_fast = fast_idx.search(small_dataset.queries[0], cfg)
        _, t_slow = slow_idx.search(small_dataset.queries[0], cfg)
        assert t_slow > t_fast
