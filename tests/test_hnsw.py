"""HNSW index tests."""

import numpy as np
import pytest

from repro.distances import OpCounter
from repro.graphs.hnsw import HNSWIndex


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(21)
    return rng.normal(size=(500, 12)).astype(np.float32)


@pytest.fixture(scope="module")
def index(points):
    return HNSWIndex(points, m=8, ef_construction=48, seed=3).build()


class TestConstruction:
    def test_multiple_layers_exist(self, index):
        assert index.num_layers() >= 2

    def test_entry_point_on_top_layer(self, index):
        top = index.num_layers() - 1
        assert index.entry_point in index._layers[top]

    def test_layer_membership_nested(self, index):
        """A vertex on layer l exists on every layer below."""
        for l in range(1, index.num_layers()):
            for v in index._layers[l]:
                assert v in index._layers[l - 1]

    def test_degree_bounds_respected(self, index):
        for l, layer in enumerate(index._layers):
            cap = index.m0 if l == 0 else index.m
            for v, row in layer.items():
                assert len(row) <= cap, f"layer {l} vertex {v} over degree"

    def test_invalid_m(self, points):
        with pytest.raises(ValueError):
            HNSWIndex(points, m=1)

    def test_search_before_build_raises(self, points):
        idx = HNSWIndex(points, m=4)
        with pytest.raises(RuntimeError):
            idx.search(points[0], 5)


class TestSearch:
    def test_self_query_finds_self(self, index, points):
        for v in (0, 10, 99):
            res = index.search(points[v], 1, ef=32)
            assert res[0][1] == v

    def test_recall_high_with_large_ef(self, index, points):
        hits = 0
        for q in range(25):
            d = ((points - points[q]) ** 2).sum(axis=1)
            truth = set(np.argsort(d, kind="stable")[:10].tolist())
            res = index.search(points[q], 10, ef=80)
            hits += len(truth & {v for _, v in res})
        assert hits / 250 > 0.9

    def test_results_sorted_ascending(self, index, points):
        res = index.search(points[3], 10, ef=40)
        ds = [d for d, _ in res]
        assert ds == sorted(ds)

    def test_larger_ef_never_smaller_recall_on_average(self, index, points):
        def recall(ef):
            hits = 0
            for q in range(20):
                d = ((points - points[q]) ** 2).sum(axis=1)
                truth = set(np.argsort(d, kind="stable")[:10].tolist())
                res = index.search(points[q], 10, ef=ef)
                hits += len(truth & {v for _, v in res})
            return hits / 200

        assert recall(100) >= recall(10) - 0.02

    def test_counter_records_work(self, index, points):
        c = OpCounter()
        index.search(points[0], 10, ef=50, counter=c)
        assert c.distance_calls > 10
        assert c.distance_flops > 0
        assert c.hops >= 1

    def test_invalid_k(self, index, points):
        with pytest.raises(ValueError):
            index.search(points[0], 0)


class TestExport:
    def test_base_layer_graph(self, index, points):
        g = index.base_layer_graph()
        g.validate()
        assert g.num_vertices == len(points)
        assert g.degree == index.m0
        assert g.entry_point == index.entry_point

    def test_memory_accounting_positive(self, index):
        assert index.memory_bytes() > 0
