"""SIMT simulator tests: device specs, memory model, warp, cost model."""

import pytest

from repro.simt.cost import CostModel
from repro.simt.device import DEVICE_PRESETS, get_device
from repro.simt.memory import (
    COALESCED_TRANSACTION_BYTES,
    MemorySpace,
    SharedMemoryBudget,
)
from repro.simt.warp import Warp


class TestDevice:
    def test_presets_exist(self):
        for name in ("v100", "p40", "titanx"):
            dev = get_device(name)
            assert dev.total_cores > 0

    def test_preset_core_counts_match_paper(self):
        assert get_device("v100").total_cores == 5120
        assert get_device("p40").total_cores == 3840
        assert get_device("titanx").total_cores == 3584

    def test_memory_ordering_matches_paper(self):
        v100, p40, titanx = (get_device(n) for n in ("v100", "p40", "titanx"))
        assert v100.global_memory_gb > p40.global_memory_gb > titanx.global_memory_gb

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("a100x")

    def test_name_normalization(self):
        assert get_device("V100") is DEVICE_PRESETS["v100"]
        assert get_device("TITAN X") is DEVICE_PRESETS["titanx"]

    def test_passthrough_spec(self):
        dev = get_device("p40")
        assert get_device(dev) is dev

    def test_with_overrides(self):
        dev = get_device("v100").with_overrides(num_sms=10)
        assert dev.num_sms == 10
        assert dev.cores_per_sm == 64  # unchanged
        assert get_device("v100").num_sms == 80  # original untouched


class TestMemorySpace:
    def test_coalesced_transactions(self):
        mem = MemorySpace()
        t = mem.read_coalesced(256)
        assert t == 256 // COALESCED_TRANSACTION_BYTES
        assert mem.coalesced_bytes == 256

    def test_scattered_wastes_sectors(self):
        mem = MemorySpace()
        mem.read_scattered(32)
        # 32 scattered 4-byte reads move 32 sectors of 32B = 1 KiB
        assert mem.total_global_bytes == 32 * 32

    def test_scattered_costs_more_than_coalesced(self):
        """The coalescing rule the paper's layout decisions rely on."""
        a, b = MemorySpace(), MemorySpace()
        a.read_coalesced(32 * 4)  # one warp-wide read of 32 words
        b.read_scattered(32)  # same words, scattered
        assert b.total_global_bytes > a.total_global_bytes

    def test_negative_rejected(self):
        mem = MemorySpace()
        with pytest.raises(ValueError):
            mem.read_coalesced(-1)
        with pytest.raises(ValueError):
            mem.read_scattered(-1)

    def test_merge_and_reset(self):
        a, b = MemorySpace(), MemorySpace()
        a.read_coalesced(128)
        b.read_scattered(4)
        a.merge(b)
        assert a.scattered_accesses == 4
        a.reset()
        assert a.total_global_bytes == 0


class TestSharedBudget:
    def test_for_search_totals(self):
        b = SharedMemoryBudget.for_search(
            dim=100, degree=16, queue_capacity=50, topk=50, visited_bytes=400
        )
        assert b.query_vector == 400
        assert b.candidate_buffer == 64
        assert b.frontier_queue == 400
        assert b.topk_queue == 400
        assert b.total == 400 + 64 + 64 + 400 + 400 + 400

    def test_multi_query_multiplies(self):
        b1 = SharedMemoryBudget.for_search(64, 16, 50, 50, 100, multi_query=1)
        b2 = SharedMemoryBudget.for_search(64, 16, 50, 50, 100, multi_query=2)
        assert b2.total == 2 * b1.total

    def test_fits(self):
        b = SharedMemoryBudget.for_search(64, 16, 50, 50, 100)
        assert b.fits(96 * 1024)
        assert not b.fits(100)


class TestWarp:
    def test_simd_compute_divides_by_lanes(self):
        dev = get_device("v100")
        w1, w2 = Warp(dev), Warp(dev)
        w1.simd_compute(320, active_lanes=32)
        w2.simd_compute(320, active_lanes=8)
        assert w1.cycles == 10
        assert w2.cycles == 40

    def test_warp_reduce_log_steps(self):
        w = Warp(get_device("v100"))
        w.warp_reduce(3)
        assert w.cycles == 3 * 5  # log2(32) = 5

    def test_sequential_spill_costs_more(self):
        dev = get_device("v100")
        shared, spilled = Warp(dev), Warp(dev)
        shared.sequential(10, in_shared=True)
        spilled.sequential(10, in_shared=False)
        assert spilled.cycles > shared.cycles

    def test_stage_attribution(self):
        w = Warp(get_device("v100"))
        w.set_stage("locate")
        w.sequential(5)
        w.set_stage("distance")
        w.simd_compute(64)
        assert set(w.stage_cycles) == {"locate", "distance"}
        assert sum(w.stage_cycles.values()) == pytest.approx(w.cycles)

    def test_zero_ops_free(self):
        w = Warp(get_device("v100"))
        w.simd_compute(0)
        w.sequential(0)
        w.warp_reduce(0)
        w.shared_access(0)
        assert w.cycles == 0

    def test_seconds_scale_with_clock(self):
        slow = get_device("v100").with_overrides(clock_ghz=1.0)
        fast = get_device("v100").with_overrides(clock_ghz=2.0)
        ws, wf = Warp(slow), Warp(fast)
        ws.simd_compute(3200)
        wf.simd_compute(3200)
        assert ws.seconds == pytest.approx(2 * wf.seconds)


class TestCostModel:
    def test_occupancy_limited_by_shared(self):
        cm = CostModel(get_device("v100"))
        full = cm.occupancy_warps_per_sm(0)
        tight = cm.occupancy_warps_per_sm(48 * 1024)
        assert full == 64
        assert tight == 2

    def test_occupancy_at_least_one(self):
        cm = CostModel(get_device("v100"))
        assert cm.occupancy_warps_per_sm(10**9) == 1

    def test_kernel_time_monotone_in_work(self):
        cm = CostModel(get_device("v100"))
        t1 = cm.kernel_time([1000.0] * 100, 10**6)
        t2 = cm.kernel_time([2000.0] * 100, 10**6)
        assert t2 > t1

    def test_kernel_time_bandwidth_bound(self):
        cm = CostModel(get_device("v100"))
        # negligible cycles, huge traffic -> bandwidth term dominates
        t = cm.kernel_time([1.0], 900 * 10**9)
        assert t == pytest.approx(1.0, rel=0.01)

    def test_kernel_time_critical_path(self):
        cm = CostModel(get_device("v100"))
        dev = cm.device
        t = cm.kernel_time([dev.clock_hz], 0)  # one warp, 1 second of cycles
        assert t >= 1.0

    def test_more_parallelism_helps_until_saturation(self):
        cm = CostModel(get_device("v100"))
        cycles = [10_000.0]
        t_small = cm.kernel_time(cycles * 10, 0)
        t_large = cm.kernel_time(cycles * 1000, 0)
        # 100x more queries should take far less than 100x longer
        assert t_large < 100 * t_small

    def test_more_cores_never_slower(self):
        big = CostModel(get_device("v100"))
        small = CostModel(get_device("v100").with_overrides(num_sms=8))
        work = [5000.0] * 500
        assert big.kernel_time(work, 10**6) <= small.kernel_time(work, 10**6)

    def test_transfer_time_latency_floor(self):
        cm = CostModel(get_device("v100"))
        assert cm.transfer_time(0) == 0.0
        assert cm.transfer_time(1) >= 10e-6

    def test_empty_batch(self):
        cm = CostModel(get_device("v100"))
        assert cm.kernel_time([], 0) == 0.0

    def test_fits_in_memory(self):
        cm = CostModel(get_device("titanx"))
        assert cm.fits_in_memory(10 * 1024**3)
        assert not cm.fits_in_memory(24 * 1024**3)
