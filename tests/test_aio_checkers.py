"""Checker-family tests for the aio analyzer: atomicity, lock order,
determinism, hygiene, plus the allow-waiver and known-bad contracts."""

import pytest

from repro.analysis.aio import analyze_source
from repro.analysis.aio.checkers import AIO_RULES
from repro.analysis.aio.fixtures import KNOWN_BAD, check_known_bad, fixture_findings
from repro.analysis.findings import Severity


def rules_of(src):
    return {f.rule for f in analyze_source(src)}


class TestAtomicity:
    def test_lost_update_fires(self):
        src = (
            "import asyncio\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
            "    async def bump(self):\n"
            "        v = self.n\n"
            "        await asyncio.sleep(0.001)\n"
            "        self.n = v + 1\n"
        )
        findings = [f for f in analyze_source(src) if f.rule == "aio-atomicity"]
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert "crosses 1 await point" in findings[0].message

    def test_lock_spanning_both_ends_is_safe(self):
        src = (
            "import asyncio\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = asyncio.Lock()\n"
            "        self.n = 0\n"
            "    async def bump(self):\n"
            "        async with self._lock:\n"
            "            v = self.n\n"
            "            await asyncio.sleep(0.001)\n"
            "            self.n = v + 1\n"
        )
        assert "aio-atomicity" not in rules_of(src)

    def test_lock_released_between_is_unsafe(self):
        src = (
            "import asyncio\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = asyncio.Lock()\n"
            "        self.n = 0\n"
            "    async def bump(self):\n"
            "        async with self._lock:\n"
            "            v = self.n\n"
            "        await asyncio.sleep(0.001)\n"
            "        async with self._lock:\n"
            "            self.n = v + 1\n"
        )
        assert "aio-atomicity" in rules_of(src)

    def test_semaphore_does_not_protect_rmw(self):
        src = (
            "import asyncio\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._sem = asyncio.Semaphore(4)\n"
            "        self.n = 0\n"
            "    async def bump(self):\n"
            "        async with self._sem:\n"
            "            v = self.n\n"
            "            await asyncio.sleep(0.001)\n"
            "            self.n = v + 1\n"
        )
        assert "aio-atomicity" in rules_of(src)

    def test_rw_read_side_does_not_protect_rmw(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._rw = AsyncRWLock()\n"
            "        self.n = 0\n"
            "    async def bump(self):\n"
            "        await self._rw.acquire_read()\n"
            "        v = self.n\n"
            "        await self.refresh()\n"
            "        self.n = v + 1\n"
            "        self._rw.release_read()\n"
            "    async def refresh(self):\n"
            "        pass\n"
        )
        assert "aio-atomicity" in rules_of(src)

    def test_rw_write_side_protects_rmw(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._rw = AsyncRWLock()\n"
            "        self.n = 0\n"
            "    async def bump(self):\n"
            "        await self._rw.acquire_write()\n"
            "        v = self.n\n"
            "        await self.refresh()\n"
            "        self.n = v + 1\n"
            "        self._rw.release_write()\n"
            "    async def refresh(self):\n"
            "        pass\n"
        )
        assert "aio-atomicity" not in rules_of(src)

    def test_inferred_protection_map_names_the_lock(self):
        src = (
            "import asyncio\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = asyncio.Lock()\n"
            "        self.n = 0\n"
            "    async def safe(self):\n"
            "        async with self._lock:\n"
            "            self.n = 1\n"
            "    async def racy(self):\n"
            "        v = self.n\n"
            "        await asyncio.sleep(0.001)\n"
            "        self.n = v + 1\n"
        )
        findings = [f for f in analyze_source(src) if f.rule == "aio-atomicity"]
        assert len(findings) == 1
        assert "hold C._lock" in findings[0].message

    def test_guard_annotation_violation(self):
        src = (
            "import asyncio\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = asyncio.Lock()\n"
            "        self.n = 0  # aio: guarded-by(self._lock)\n"
            "    async def bad(self):\n"
            "        self.n = 1\n"
        )
        findings = [f for f in analyze_source(src) if f.rule == "aio-guard"]
        assert len(findings) == 1
        assert "C._lock" in findings[0].message

    def test_guard_annotation_satisfied(self):
        src = (
            "import asyncio\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = asyncio.Lock()\n"
            "        self.n = 0  # aio: guarded-by(self._lock)\n"
            "    async def good(self):\n"
            "        async with self._lock:\n"
            "            self.n = 1\n"
        )
        assert "aio-guard" not in rules_of(src)

    def test_guard_skips_sync_methods(self):
        src = (
            "import asyncio\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = asyncio.Lock()\n"
            "        self.n = 0  # aio: guarded-by(self._lock)\n"
            "    def sync_write(self):\n"
            "        self.n = 1\n"
        )
        assert "aio-guard" not in rules_of(src)


class TestLockOrder:
    ABBA = KNOWN_BAD["abba-deadlock"][0]

    def test_abba_cycle_fires_with_path(self):
        findings = [
            f for f in analyze_source(self.ABBA) if f.rule == "aio-lock-order"
        ]
        assert len(findings) == 1
        assert "Pool._a" in findings[0].message
        assert "Pool._b" in findings[0].message

    def test_consistent_order_is_clean(self):
        src = (
            "import asyncio\n"
            "class Pool:\n"
            "    def __init__(self):\n"
            "        self._a = asyncio.Lock()\n"
            "        self._b = asyncio.Lock()\n"
            "    async def one(self):\n"
            "        async with self._a:\n"
            "            async with self._b:\n"
            "                pass\n"
            "    async def two(self):\n"
            "        async with self._a:\n"
            "            async with self._b:\n"
            "                pass\n"
        )
        assert "aio-lock-order" not in rules_of(src)

    def test_cycle_through_callee_summary(self):
        src = (
            "import asyncio\n"
            "class Pool:\n"
            "    def __init__(self):\n"
            "        self._a = asyncio.Lock()\n"
            "        self._b = asyncio.Lock()\n"
            "    async def outer(self):\n"
            "        async with self._a:\n"
            "            await self.inner()\n"
            "    async def inner(self):\n"
            "        async with self._b:\n"
            "            pass\n"
            "    async def reversed_path(self):\n"
            "        async with self._b:\n"
            "            async with self._a:\n"
            "                pass\n"
        )
        assert "aio-lock-order" in rules_of(src)

    def test_spawned_task_does_not_propagate_order(self):
        src = (
            "import asyncio\n"
            "class Pool:\n"
            "    def __init__(self):\n"
            "        self._a = asyncio.Lock()\n"
            "        self._b = asyncio.Lock()\n"
            "    async def outer(self):\n"
            "        async with self._a:\n"
            "            t = asyncio.create_task(self.inner())\n"
            "            await t\n"
            "    async def inner(self):\n"
            "        async with self._b:\n"
            "            pass\n"
            "    async def reversed_path(self):\n"
            "        async with self._b:\n"
            "            async with self._a:\n"
            "                pass\n"
        )
        assert "aio-lock-order" not in rules_of(src)

    def test_rw_upgrade_fires(self):
        assert "aio-rw-upgrade" in rules_of(KNOWN_BAD["rw-upgrade"][0])

    def test_rw_read_then_released_then_write_is_clean(self):
        src = (
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._rw = AsyncRWLock()\n"
            "    async def reload(self):\n"
            "        await self._rw.acquire_read()\n"
            "        self._rw.release_read()\n"
            "        await self._rw.acquire_write()\n"
            "        self._rw.release_write()\n"
        )
        assert "aio-rw-upgrade" not in rules_of(src)

    def test_sem_under_exclusive_lock_warns(self):
        findings = [
            f
            for f in analyze_source(KNOWN_BAD["sem-under-lock"][0])
            if f.rule == "aio-sem-under-lock"
        ]
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING

    def test_sem_under_rw_read_is_clean(self):
        src = (
            "import asyncio\n"
            "class Slots:\n"
            "    def __init__(self):\n"
            "        self._rw = AsyncRWLock()\n"
            "        self._slots = asyncio.Semaphore(2)\n"
            "    async def grab(self):\n"
            "        await self._rw.acquire_read()\n"
            "        async with self._slots:\n"
            "            pass\n"
            "        self._rw.release_read()\n"
        )
        assert "aio-sem-under-lock" not in rules_of(src)

    def test_semaphore_self_reacquire_not_a_cycle(self):
        src = (
            "import asyncio\n"
            "class Slots:\n"
            "    def __init__(self):\n"
            "        self._slots = asyncio.Semaphore(4)\n"
            "    async def grab_two(self):\n"
            "        async with self._slots:\n"
            "            async with self._slots:\n"
            "                pass\n"
        )
        assert "aio-lock-order" not in rules_of(src)


class TestDeterminism:
    def test_wall_clock_is_error(self):
        findings = [
            f
            for f in analyze_source(KNOWN_BAD["clock-leak"][0])
            if f.rule == "aio-wall-clock"
        ]
        assert findings and findings[0].severity is Severity.ERROR

    def test_sync_function_clock_read_not_flagged(self):
        # The determinism family only covers coroutines; sync helpers
        # are the nondet sweep's turf (arrays engine).
        src = "import time\n\ndef helper():\n    return time.time()\n"
        assert "aio-wall-clock" not in rules_of(src)

    def test_rng_rules(self):
        assert "aio-rng" in rules_of(KNOWN_BAD["seedless-rng"][0])

    def test_sleep_zero_warns(self):
        findings = [
            f
            for f in analyze_source(KNOWN_BAD["sleep-zero"][0])
            if f.rule == "aio-sleep-zero"
        ]
        assert findings and findings[0].severity is Severity.WARNING

    def test_unordered_spawn_warns(self):
        assert "aio-unordered-spawn" in rules_of(KNOWN_BAD["unordered-spawn"][0])

    def test_dict_key_iteration_ok(self):
        # Dict preserves insertion order — spreading one is deterministic.
        src = (
            "import asyncio\n"
            "class Fanout:\n"
            "    def __init__(self):\n"
            "        self._pending = {}\n"
            "    async def flush(self):\n"
            "        await asyncio.gather(*tuple(self._pending))\n"
        )
        assert "aio-unordered-spawn" not in rules_of(src)


class TestHygiene:
    def test_unawaited_coroutine_is_error(self):
        findings = [
            f
            for f in analyze_source(KNOWN_BAD["unawaited-coroutine"][0])
            if f.rule == "aio-unawaited"
        ]
        assert findings and findings[0].severity is Severity.ERROR

    def test_bare_call_to_sync_method_ok(self):
        src = (
            "class Worker:\n"
            "    def step(self):\n"
            "        pass\n"
            "    async def run(self):\n"
            "        self.step()\n"
        )
        assert "aio-unawaited" not in rules_of(src)

    def test_dropped_task_warns(self):
        assert "aio-dropped-task" in rules_of(KNOWN_BAD["dropped-task"][0])

    def test_gather_no_policy_on_shutdown_path(self):
        assert "aio-gather-policy" in rules_of(KNOWN_BAD["gather-no-policy"][0])

    def test_gather_with_policy_is_clean(self):
        src = (
            "import asyncio\n"
            "class Service:\n"
            "    async def shutdown(self, tasks):\n"
            "        await asyncio.gather(*tasks, return_exceptions=True)\n"
        )
        assert "aio-gather-policy" not in rules_of(src)

    def test_gather_outside_shutdown_over_locals_is_clean(self):
        src = (
            "import asyncio\n"
            "class Service:\n"
            "    async def fanout(self, tasks):\n"
            "        await asyncio.gather(*tasks)\n"
        )
        assert "aio-gather-policy" not in rules_of(src)


class TestWaivers:
    @pytest.mark.parametrize(
        "name,rule",
        [(n, r) for n, (_s, rules) in sorted(KNOWN_BAD.items()) for r in rules],
    )
    def test_allow_comment_waives_each_rule(self, name, rule):
        source, _rules = KNOWN_BAD[name]
        lines = source.splitlines()
        baseline = analyze_source(source)
        target_lines = {
            int(f.location.rsplit(":", 1)[1])
            for f in baseline
            if f.rule == rule
        }
        for line in target_lines:
            lines[line - 1] += f"  # aio: allow({rule})"
        waived = analyze_source("\n".join(lines) + "\n")
        assert rule not in {f.rule for f in waived}


class TestKnownBadContract:
    def test_every_fixture_fires_expected_rules(self):
        for name, (_source, expected) in KNOWN_BAD.items():
            fired = {f.rule for f in fixture_findings(name)}
            assert set(expected) <= fired, (name, expected, sorted(fired))

    def test_check_known_bad_has_errors(self):
        findings = check_known_bad()
        assert any(f.severity is Severity.ERROR for f in findings)
        assert not any(f.rule == "aio-known-bad-miss" for f in findings)

    def test_all_rules_are_exercised_by_fixtures(self):
        covered = {r for _s, rules in KNOWN_BAD.values() for r in rules}
        assert covered == set(AIO_RULES)

    def test_headline_fixtures_present(self):
        # The three fixtures the issue names explicitly.
        assert {"lost-update", "abba-deadlock", "clock-leak"} <= set(KNOWN_BAD)
