"""Extraction-layer tests for the aio analyzer: await numbering, lock
canonicalisation, field-access records, taint dataflow, and events."""

import pytest

from repro.analysis.aio.model import extract_module

# ---------------------------------------------------------------------------
# helpers


def method(src, cls, name):
    module = extract_module(src)
    return module.classes[cls].methods[name]


LOCKED = """\
import asyncio

class C:
    def __init__(self):
        self._lock = asyncio.Lock()
        self._sem = asyncio.Semaphore(3)
        self._rw = AsyncRWLock()
        self._lazy = None
        self.count = 0

    def _slots(self):
        if self._lazy is None:
            self._lazy = asyncio.Semaphore(2)
        return self._lazy

    async def locked(self):
        async with self._lock:
            self.count = self.count + 1

    async def via_factory(self):
        async with self._slots():
            pass

    async def manual(self):
        await self._lock.acquire()
        self.count = 1
        self._lock.release()
        self.count = 2

    async def reader(self):
        await self._rw.acquire_read()
        self._rw.release_read()

    async def writer(self):
        await self._rw.acquire_write()
        self._rw.release_write()
"""


class TestLockModel:
    def test_ctor_typing(self):
        module = extract_module(LOCKED)
        fields = module.classes["C"].lock_fields
        assert fields == {"_lock": "lock", "_sem": "sem", "_lazy": "sem", "_rw": "rw"}

    def test_factory_method_resolves_to_field(self):
        module = extract_module(LOCKED)
        assert module.classes["C"].lock_methods == {"_slots": "_lazy"}

    def test_async_with_acquires_canonical_token(self):
        fn = method(LOCKED, "C", "locked")
        assert [(a.token, a.kind, a.mode) for a in fn.acquisitions] == [
            ("C._lock", "lock", "x")
        ]

    def test_factory_call_acquires_underlying_field(self):
        fn = method(LOCKED, "C", "via_factory")
        assert [(a.token, a.kind) for a in fn.acquisitions] == [("C._lazy", "sem")]

    def test_manual_acquire_release_held_window(self):
        fn = method(LOCKED, "C", "manual")
        writes = {w.line: w.locks for w in fn.writes if w.field == "count"}
        held_lines = [line for line, locks in writes.items() if locks]
        free_lines = [line for line, locks in writes.items() if not locks]
        assert len(held_lines) == 1 and len(free_lines) == 1
        assert held_lines[0] < free_lines[0]

    def test_rw_modes_split(self):
        r = method(LOCKED, "C", "reader").acquisitions
        w = method(LOCKED, "C", "writer").acquisitions
        assert [(a.token, a.mode) for a in r] == [("C._rw", "r")]
        assert [(a.token, a.mode) for a in w] == [("C._rw", "w")]

    def test_module_level_lock(self):
        src = "import asyncio\nGLOBAL = asyncio.Lock()\n"
        module = extract_module(src)
        assert module.module_locks == {"GLOBAL": "lock"}


ATOMICITY = """\
import asyncio

class C:
    def __init__(self):
        self._lock = asyncio.Lock()
        self.x = 0
        self.y = 0

    async def direct(self):
        v = self.x
        await asyncio.sleep(0.01)
        self.x = v + 1

    async def augmented(self):
        self.x += await self.fetch()

    async def fetch(self):
        return 1

    async def safe(self):
        async with self._lock:
            v = self.x
            await asyncio.sleep(0.01)
            self.x = v + 1

    async def two_counters(self):
        self.y += 1
        await asyncio.sleep(0.01)
        self.y -= 1

    async def chained(self):
        a = self.x
        b = a * 2
        await asyncio.sleep(0.01)
        self.x = b

    async def unrelated(self):
        v = self.y
        await asyncio.sleep(0.01)
        self.x = v
"""


class TestAtomicityPairs:
    def test_read_await_write_pairs(self):
        fn = method(ATOMICITY, "C", "direct")
        assert len(fn.atomicity) == 1
        pair = fn.atomicity[0]
        assert pair.field == "x" and pair.awaits_between == 1
        assert pair.read_locks == () and pair.write_locks == ()

    def test_aug_assign_spanning_await(self):
        fn = method(ATOMICITY, "C", "augmented")
        assert len(fn.atomicity) == 1
        assert fn.atomicity[0].field == "x"

    def test_lock_held_pair_still_recorded_with_locks(self):
        # The pair is recorded; the checker decides it's safe because an
        # exclusive token spans both ends.
        fn = method(ATOMICITY, "C", "safe")
        assert len(fn.atomicity) == 1
        pair = fn.atomicity[0]
        assert ("C._lock", "lock", "x") in {l[:3] for l in pair.read_locks}
        # The same acquisition (same seq) spans both ends.
        assert set(pair.read_locks) & set(pair.write_locks)

    def test_independent_rmws_do_not_pair(self):
        # += then -= are two atomic statements; no value flows across
        # the await, so no pair (the classic false positive).
        fn = method(ATOMICITY, "C", "two_counters")
        assert fn.atomicity == []

    def test_taint_flows_through_locals(self):
        fn = method(ATOMICITY, "C", "chained")
        assert len(fn.atomicity) == 1
        assert fn.atomicity[0].field == "x"

    def test_cross_field_flow_does_not_pair(self):
        fn = method(ATOMICITY, "C", "unrelated")
        assert fn.atomicity == []


EVENTS = """\
import asyncio
import time
import numpy as np

class C:
    def __init__(self):
        self.tasks = set()
        self.ordered = []

    async def clock(self):
        return time.time()

    async def virtual_ok(self):
        loop = asyncio.get_running_loop()
        return loop.time()

    async def rng_legacy(self):
        return np.random.rand(3)

    async def rng_seedless(self):
        return np.random.default_rng()

    async def rng_seeded_ok(self):
        return np.random.default_rng(42)

    async def yield_race(self):
        await asyncio.sleep(0)

    async def sleep_ok(self):
        await asyncio.sleep(0.5)

    async def spread_set(self):
        await asyncio.gather(*tuple(self.tasks))

    async def spread_list(self):
        await asyncio.gather(*tuple(self.ordered))

    async def drop(self):
        asyncio.create_task(self.clock())

    async def kept(self):
        t = asyncio.create_task(self.clock())
        await t
"""


def events_of(name):
    return [e.kind for e in method(EVENTS, "C", name).events]


class TestEvents:
    def test_wall_clock_read(self):
        assert events_of("clock") == ["wall-clock"]

    def test_loop_time_is_exempt(self):
        assert events_of("virtual_ok") == []

    def test_legacy_rng(self):
        assert events_of("rng_legacy") == ["rng"]

    def test_seedless_default_rng(self):
        assert events_of("rng_seedless") == ["rng"]

    def test_seeded_rng_ok(self):
        assert events_of("rng_seeded_ok") == []

    def test_sleep_zero(self):
        assert events_of("yield_race") == ["sleep-zero"]

    def test_nonzero_sleep_ok(self):
        assert events_of("sleep_ok") == []

    def test_gather_over_set_field(self):
        assert events_of("spread_set") == ["unordered-iter"]

    def test_gather_over_list_field_ok(self):
        assert events_of("spread_list") == []

    def test_dropped_create_task(self):
        assert events_of("drop") == ["dropped-task"]

    def test_bound_create_task_ok(self):
        assert events_of("kept") == []


class TestStructure:
    def test_await_count(self):
        src = (
            "import asyncio\n"
            "async def f():\n"
            "    await asyncio.sleep(1)\n"
            "    await asyncio.sleep(2)\n"
        )
        module = extract_module(src)
        assert module.functions["f"].await_count == 2

    def test_gather_policy_flag(self):
        src = (
            "import asyncio\n"
            "async def stop(tasks):\n"
            "    await asyncio.gather(*tasks, return_exceptions=True)\n"
        )
        module = extract_module(src)
        (g,) = module.functions["stop"].gathers
        assert g.has_policy

    def test_call_styles(self):
        src = (
            "import asyncio\n"
            "class C:\n"
            "    async def a(self):\n"
            "        pass\n"
            "    async def run(self):\n"
            "        await self.a()\n"
            "        self.a()\n"
            "        asyncio.create_task(self.a())\n"
        )
        fn = method(src, "C", "run")
        styles = sorted((c.target, c.style) for c in fn.calls)
        assert ("C.a", "await") in styles
        assert ("C.a", "bare") in styles
        assert ("C.a", "task") in styles

    def test_allow_waiver_lookup(self):
        src = (
            "import time\n"
            "async def f():\n"
            "    # aio: allow(aio-wall-clock)\n"
            "    return time.time()\n"
        )
        module = extract_module(src)
        assert module.allowed("aio-wall-clock", 4)
        assert not module.allowed("aio-rng", 4)

    def test_allow_on_def_line_covers_body(self):
        src = (
            "import time\n"
            "async def f():  # aio: allow(aio-wall-clock)\n"
            "    return time.time()\n"
        )
        module = extract_module(src)
        assert module.allowed("aio-wall-clock", 3)

    def test_task_field_via_annotation(self):
        src = (
            "import asyncio\n"
            "from typing import Dict\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.live: Dict[asyncio.Task, None] = {}\n"
        )
        module = extract_module(src)
        assert "live" in module.classes["C"].task_fields

    def test_task_field_via_add(self):
        src = (
            "import asyncio\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.live = set()\n"
            "    async def spawn(self):\n"
            "        t = asyncio.create_task(self.work())\n"
            "        self.live.add(t)\n"
            "    async def work(self):\n"
            "        pass\n"
        )
        module = extract_module(src)
        assert "live" in module.classes["C"].task_fields

    def test_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            extract_module("def broken(:\n")
