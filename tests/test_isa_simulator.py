"""Cycle-level SIMT simulator tests: functional + timing semantics."""

import numpy as np
import pytest

from repro.simt import isa
from repro.simt.simulator import (
    GLOBAL_LATENCY,
    SMSimulator,
    WarpSimulator,
)


def run_program(program, global_mem=None, shared_mem=None, **regs):
    sim = WarpSimulator(
        program,
        global_mem=global_mem if global_mem is not None else np.zeros(256),
        shared_mem=shared_mem,
    )
    for name, val in regs.items():
        sim.set_register(name, val)
    stats = sim.run()
    return sim, stats


class TestValidation:
    def test_unbalanced_if(self):
        with pytest.raises(ValueError, match="unterminated"):
            isa.validate_program([isa.If(pred="p")])

    def test_unmatched_endif(self):
        with pytest.raises(ValueError, match="EndIf"):
            isa.validate_program([isa.EndIf()])

    def test_else_outside_if(self):
        with pytest.raises(ValueError, match="Else"):
            isa.validate_program([isa.Else()])

    def test_unmatched_endwhile(self):
        with pytest.raises(ValueError, match="EndWhile"):
            isa.validate_program([isa.EndWhile()])

    def test_register_shape_check(self):
        sim = WarpSimulator([isa.Mov(dst="a", src=1.0)], np.zeros(8))
        with pytest.raises(ValueError):
            sim.set_register("x", np.zeros(5))


class TestArithmetic:
    def test_mov_and_binary(self):
        sim, _ = run_program(
            [
                isa.Mov(dst="a", src=3.0),
                isa.Binary(op="mul", dst="b", a="a", b=4.0),
                isa.Binary(op="sub", dst="c", a="b", b="a"),
            ]
        )
        assert sim.register("c")[0] == 9.0

    def test_fma(self):
        sim, _ = run_program([isa.Mov(dst="a", src=2.0), isa.Fma(dst="r", a="a", b=3.0, c=1.0)])
        np.testing.assert_array_equal(sim.register("r"), np.full(32, 7.0))

    def test_lane_id(self):
        sim, _ = run_program([isa.LaneId(dst="lane")])
        np.testing.assert_array_equal(sim.register("lane"), np.arange(32))

    def test_cmp_produces_predicate(self):
        sim, _ = run_program(
            [isa.LaneId(dst="lane"), isa.Cmp(rel="lt", dst="p", a="lane", b=16.0)]
        )
        assert sim.register("p").sum() == 16

    def test_popc(self):
        sim, _ = run_program([isa.Mov(dst="x", src=float(0b1011)), isa.Popc(dst="c", a="x")])
        assert sim.register("c")[0] == 3

    def test_div_by_zero_is_zero(self):
        sim, _ = run_program([isa.Binary(op="div", dst="r", a=1.0, b=0.0)])
        assert sim.register("r")[0] == 0.0

    def test_unknown_ops_rejected(self):
        with pytest.raises(ValueError):
            run_program([isa.Binary(op="pow", dst="r", a=1.0, b=2.0)])
        with pytest.raises(ValueError):
            run_program([isa.Cmp(rel="approx", dst="r", a=1.0, b=2.0)])

    def test_bitwise_ops(self):
        sim, _ = run_program(
            [
                isa.Mov(dst="a", src=float(0b1100)),
                isa.Binary(op="xor", dst="x", a="a", b=float(0b1010)),
                isa.Binary(op="and", dst="n", a="a", b=float(0b1010)),
                isa.Binary(op="shl", dst="s", a="a", b=1.0),
            ]
        )
        assert sim.register("x")[0] == 0b0110
        assert sim.register("n")[0] == 0b1000
        assert sim.register("s")[0] == 0b11000


class TestMemory:
    def test_coalesced_one_transaction(self):
        sim, stats = run_program(
            [isa.LaneId(dst="lane"), isa.Ldg(dst="v", addr="lane")],
            global_mem=np.arange(64, dtype=float),
        )
        np.testing.assert_array_equal(sim.register("v"), np.arange(32))
        assert stats.global_transactions == 1

    def test_scattered_32_transactions(self):
        sim, stats = run_program(
            [
                isa.LaneId(dst="lane"),
                isa.Binary(op="mul", dst="addr", a="lane", b=32.0),
                isa.Ldg(dst="v", addr="addr"),
            ],
            global_mem=np.arange(2048, dtype=float),
        )
        assert stats.global_transactions == 32

    def test_load_to_use_latency_stalls(self):
        _, no_use = run_program(
            [isa.LaneId(dst="lane"), isa.Ldg(dst="v", addr="lane")],
            global_mem=np.zeros(64),
        )
        _, with_use = run_program(
            [
                isa.LaneId(dst="lane"),
                isa.Ldg(dst="v", addr="lane"),
                isa.Binary(op="add", dst="s", a="v", b=1.0),
            ],
            global_mem=np.zeros(64),
        )
        assert with_use.stall_cycles >= GLOBAL_LATENCY - 1
        assert no_use.stall_cycles == 0

    def test_store_roundtrip(self):
        sim, _ = run_program(
            [
                isa.LaneId(dst="lane"),
                isa.Stg(addr="lane", src="lane"),
                isa.Ldg(dst="back", addr="lane"),
            ],
            global_mem=np.zeros(64),
        )
        np.testing.assert_array_equal(sim.register("back"), np.arange(32))

    def test_shared_bank_conflicts(self):
        conflict_free = [
            isa.LaneId(dst="lane"),
            isa.Lds(dst="v", addr="lane"),
        ]
        two_way = [
            isa.LaneId(dst="lane"),
            isa.Binary(op="mul", dst="addr", a="lane", b=2.0),
            isa.Lds(dst="v", addr="addr"),
        ]
        _, s_free = run_program(conflict_free, shared_mem=np.zeros(128))
        _, s_conf = run_program(two_way, shared_mem=np.zeros(128))
        assert s_free.shared_conflict_cycles == 0
        assert s_conf.shared_conflict_cycles == 1  # 2-way conflict

    def test_broadcast_is_conflict_free(self):
        sim, stats = run_program(
            [isa.Mov(dst="addr", src=5.0), isa.Lds(dst="v", addr="addr")],
            shared_mem=np.arange(32, dtype=float),
        )
        assert stats.shared_conflict_cycles == 0
        np.testing.assert_array_equal(sim.register("v"), np.full(32, 5.0))


class TestShuffle:
    def test_shfl_down_sum_reduction(self):
        from repro.simt.kernels import warp_reduce_kernel

        program = [isa.LaneId(dst="acc")] + warp_reduce_kernel("acc")
        sim, _ = run_program(program)
        assert sim.register("acc")[0] == sum(range(32))

    def test_shfl_identity_past_edge(self):
        sim, _ = run_program(
            [isa.LaneId(dst="x"), isa.ShflDown(dst="y", src="x", delta=16)]
        )
        y = sim.register("y")
        assert y[0] == 16
        assert y[16] == 16  # lane 16+16=32 out of range -> keeps own value


class TestControlFlow:
    def test_if_masks_writes(self):
        sim, _ = run_program(
            [
                isa.LaneId(dst="lane"),
                isa.Cmp(rel="lt", dst="p", a="lane", b=8.0),
                isa.Mov(dst="out", src=0.0),
                isa.If(pred="p"),
                isa.Mov(dst="out", src=1.0),
                isa.EndIf(),
            ]
        )
        assert sim.register("out").sum() == 8

    def test_if_else_partition(self):
        sim, _ = run_program(
            [
                isa.LaneId(dst="lane"),
                isa.Cmp(rel="lt", dst="p", a="lane", b=10.0),
                isa.If(pred="p"),
                isa.Mov(dst="out", src=1.0),
                isa.Else(),
                isa.Mov(dst="out", src=2.0),
                isa.EndIf(),
            ]
        )
        out = sim.register("out")
        assert (out[:10] == 1.0).all()
        assert (out[10:] == 2.0).all()

    def test_empty_then_branch_skips(self):
        sim, stats = run_program(
            [
                isa.Mov(dst="p", src=0.0),  # false everywhere
                isa.If(pred="p"),
                isa.Mov(dst="out", src=1.0),
                isa.EndIf(),
                isa.Mov(dst="out2", src=5.0),
            ]
        )
        assert "out" not in sim.regs
        assert sim.register("out2")[0] == 5.0

    def test_all_false_with_else_runs_else_only(self):
        sim, _ = run_program(
            [
                isa.Mov(dst="p", src=0.0),
                isa.If(pred="p"),
                isa.Mov(dst="a", src=1.0),
                isa.Else(),
                isa.Mov(dst="b", src=2.0),
                isa.EndIf(),
            ]
        )
        assert "a" not in sim.regs
        assert sim.register("b")[0] == 2.0

    def test_all_true_with_else_skips_else(self):
        sim, _ = run_program(
            [
                isa.Mov(dst="p", src=1.0),
                isa.If(pred="p"),
                isa.Mov(dst="a", src=1.0),
                isa.Else(),
                isa.Mov(dst="b", src=2.0),
                isa.EndIf(),
            ]
        )
        assert sim.register("a")[0] == 1.0
        assert "b" not in sim.regs

    def test_divergent_branch_counted(self):
        _, stats = run_program(
            [
                isa.LaneId(dst="lane"),
                isa.Cmp(rel="lt", dst="p", a="lane", b=16.0),
                isa.If(pred="p"),
                isa.Mov(dst="x", src=1.0),
                isa.EndIf(),
            ]
        )
        assert stats.divergent_branches == 1

    def test_divergence_serializes_both_paths(self):
        """A divergent if/else costs both bodies; a uniform one costs one."""

        def body(pred_value):
            return [
                isa.LaneId(dst="lane"),
                isa.Cmp(rel="lt", dst="p", a="lane", b=pred_value),
                isa.If(pred="p"),
            ] + [isa.Binary(op="add", dst="a", a="lane", b=1.0)] * 20 + [
                isa.Else()
            ] + [isa.Binary(op="add", dst="b", a="lane", b=2.0)] * 20 + [
                isa.EndIf()
            ]

        _, divergent = run_program(body(16.0))  # half the lanes each way
        _, uniform = run_program(body(32.0))  # all lanes take `then`
        assert divergent.cycles > uniform.cycles + 15

    def test_while_loop_per_lane_trip_counts(self):
        """Lanes exit a while loop independently; the warp runs until the
        longest-running lane finishes."""
        sim, _ = run_program(
            [
                isa.LaneId(dst="lane"),
                isa.Mov(dst="i", src=0.0),
                isa.Cmp(rel="lt", dst="p", a="i", b="lane"),
                isa.While(pred="p"),
                isa.Binary(op="add", dst="i", a="i", b=1.0),
                isa.Cmp(rel="lt", dst="p", a="i", b="lane"),
                isa.EndWhile(),
            ]
        )
        # each lane counts up to its own lane id
        np.testing.assert_array_equal(sim.register("i"), np.arange(32))

    def test_nested_loops(self):
        sim, _ = run_program(
            [
                isa.Mov(dst="total", src=0.0),
                isa.Mov(dst="i", src=0.0),
                isa.Cmp(rel="lt", dst="pi", a="i", b=3.0),
                isa.While(pred="pi"),
                isa.Mov(dst="j", src=0.0),
                isa.Cmp(rel="lt", dst="pj", a="j", b=4.0),
                isa.While(pred="pj"),
                isa.Binary(op="add", dst="total", a="total", b=1.0),
                isa.Binary(op="add", dst="j", a="j", b=1.0),
                isa.Cmp(rel="lt", dst="pj", a="j", b=4.0),
                isa.EndWhile(),
                isa.Binary(op="add", dst="i", a="i", b=1.0),
                isa.Cmp(rel="lt", dst="pi", a="i", b=3.0),
                isa.EndWhile(),
            ]
        )
        assert sim.register("total")[0] == 12

    def test_runaway_loop_guarded(self):
        with pytest.raises(RuntimeError, match="budget"):
            run_program(
                [
                    isa.Mov(dst="p", src=1.0),
                    isa.While(pred="p"),
                    isa.Mov(dst="x", src=1.0),
                    isa.EndWhile(),
                ]
            )


class TestSMSimulator:
    @staticmethod
    def _memory_heavy_warp():
        program = [
            isa.LaneId(dst="lane"),
            isa.Mov(dst="i", src=0.0),
            isa.Cmp(rel="lt", dst="p", a="i", b=4.0),
            isa.While(pred="p"),
            isa.Binary(op="mul", dst="addr", a="i", b=32.0),
            isa.Binary(op="add", dst="addr", a="addr", b="lane"),
            isa.Ldg(dst="v", addr="addr"),
            isa.Binary(op="add", dst="s", a="v", b=1.0),
            isa.Binary(op="add", dst="i", a="i", b=1.0),
            isa.Cmp(rel="lt", dst="p", a="i", b=4.0),
            isa.EndWhile(),
        ]
        return WarpSimulator(program, global_mem=np.zeros(256))

    def test_needs_warps(self):
        with pytest.raises(ValueError):
            SMSimulator([])

    def test_latency_hiding_improves_throughput(self):
        """More resident warps hide global latency: cycles/warp drops by
        several x — the mechanism behind the analytic model's overlap."""
        single = SMSimulator([self._memory_heavy_warp()]).run()
        many = SMSimulator([self._memory_heavy_warp() for _ in range(16)]).run()
        per_warp_single = single.total_cycles
        per_warp_many = many.total_cycles / 16
        assert per_warp_many < per_warp_single / 4

    def test_functional_results_unchanged_by_scheduling(self):
        warps = [self._memory_heavy_warp() for _ in range(4)]
        SMSimulator(warps).run()
        for w in warps:
            assert w.done
            np.testing.assert_array_equal(w.register("s"), np.ones(32))
