"""Block-size extension and latency-percentile tests."""

import pytest

from repro.core.config import SearchConfig
from repro.core.gpu_kernel import GpuSongIndex
from repro.simt.cost import CostModel
from repro.simt.device import get_device


class TestConfig:
    def test_block_size_validated(self):
        with pytest.raises(ValueError):
            SearchConfig(block_size=0)
        with pytest.raises(ValueError):
            SearchConfig(block_size=48)
        SearchConfig(block_size=128)  # ok

    def test_multi_query_excludes_blocks(self):
        with pytest.raises(ValueError):
            SearchConfig(multi_query=2, block_size=64)


class TestBlockSemantics:
    def test_results_identical_across_block_sizes(self, small_dataset, small_graph):
        """block_size is purely a machine-mapping knob."""
        idx = GpuSongIndex(small_graph, small_dataset.data)
        base, _ = idx.search_batch(
            small_dataset.queries[:5], SearchConfig(k=10, queue_size=40)
        )
        for bs in (64, 128):
            got, _ = idx.search_batch(
                small_dataset.queries[:5],
                SearchConfig(k=10, queue_size=40, block_size=bs),
            )
            for a, b in zip(base, got):
                assert [v for _, v in a] == [v for _, v in b]

    def test_bigger_block_shrinks_distance_stage(self, small_dataset, small_graph):
        idx = GpuSongIndex(small_graph, small_dataset.data)
        def distance_cycles(bs):
            _, t = idx.search_batch(
                small_dataset.queries[:5],
                SearchConfig(k=10, queue_size=40, block_size=bs),
            )
            return t.stage_cycles["distance"]

        assert distance_cycles(128) < distance_cycles(32)

    def test_bigger_block_lowers_group_residency(self):
        cm = CostModel(get_device("v100"))
        work = [10_000.0] * 400
        t1 = cm.kernel_time(work, 0, warps_per_group=1)
        t4 = cm.kernel_time(work, 0, warps_per_group=4)
        assert t4 >= t1  # fewer resident groups can never be faster here

    def test_warps_per_group_validated(self):
        cm = CostModel(get_device("v100"))
        with pytest.raises(ValueError):
            cm.kernel_time([1.0], 0, warps_per_group=0)


class TestLatencyPercentiles:
    def test_percentiles_ordered(self, small_dataset, small_graph):
        idx = GpuSongIndex(small_graph, small_dataset.data)
        _, timing = idx.search_batch(
            small_dataset.queries, SearchConfig(k=10, queue_size=40)
        )
        p50, p90, p99 = timing.latency_percentiles(idx.device)
        assert 0 < p50 <= p90 <= p99

    def test_empty_safe(self):
        from repro.simt.kernel import KernelResult

        kr = KernelResult(
            outputs=[], kernel_seconds=0, htod_seconds=0, dtoh_seconds=0,
            stage_cycles={}, total_global_bytes=0, occupancy_warps_per_sm=1,
        )
        assert kr.latency_percentiles(get_device("v100")) == [0.0, 0.0, 0.0]

    def test_warp_cycles_recorded_per_query(self, small_dataset, small_graph):
        idx = GpuSongIndex(small_graph, small_dataset.data)
        _, timing = idx.search_batch(
            small_dataset.queries[:7], SearchConfig(k=10, queue_size=40)
        )
        assert len(timing.warp_cycles) == 7
