"""Parity suite: the vectorized lockstep engine vs the serial searcher.

The batched engine's correctness bar (ISSUE 1) is *bit-identical*
``(distance, id)`` lists against :meth:`SongSearcher.search` under exact
visited backends, across metrics, graphs and optimization configs —
plus SIMT-style edge cases (B=1, one lane finishing first) and the
packed-key machinery the structure-of-arrays state rests on.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.batched import BatchedSongSearcher
from repro.core.config import SearchConfig
from repro.core.song import SearchStats, SongSearcher
from repro.core.stages import CountingMeter
from repro.distances import OpCounter, get_metric
from repro.graphs import build_nsg, build_nsw
from repro.structures.soa import (
    PAD_KEY,
    BatchedFrontier,
    BatchedTopK,
    pack_keys,
    unpack_distances,
    unpack_ids,
)


@pytest.fixture(scope="module")
def parity_data(rng):
    data = rng.standard_normal((400, 16)).astype(np.float32)
    queries = rng.standard_normal((24, 16)).astype(np.float32)
    return data, queries


@pytest.fixture(scope="module")
def parity_graphs(parity_data):
    data, _ = parity_data
    return {
        "nsw": build_nsw(data, m=8, ef_construction=32, seed=3),
        "nsg": build_nsg(data, degree=10, knn=10),
    }


def assert_exact_parity(searcher, queries, config):
    serial = searcher.search_batch(queries, config, engine="serial")
    batched = searcher.search_batch(queries, config, engine="batched")
    assert serial == batched  # (distance, id) tuples, bit-for-bit


# -- packed-key machinery -----------------------------------------------------


def test_pack_keys_orders_like_lexicographic_sort(rng):
    dists = rng.standard_normal(200).astype(np.float32)
    dists[:10] = 0.0
    dists[10:20] = -0.0
    dists[20:40] = dists[40:60]  # force distance ties -> id tie-break
    ids = rng.integers(0, 1000, size=200)
    keys = np.sort(pack_keys(dists, ids))
    expect = sorted(zip(dists.tolist(), ids.tolist()))
    got = list(zip(unpack_distances(keys).tolist(), unpack_ids(keys).tolist()))
    assert got == expect


def test_pack_unpack_roundtrip(rng):
    dists = np.array([-3.5, -0.0, 0.0, 1e-30, 7.25, 1e30], dtype=np.float32)
    ids = np.array([5, 0, 2**31 - 1, 1, 17, 42])
    keys = pack_keys(dists, ids)
    assert np.all(keys != PAD_KEY)
    assert unpack_ids(keys).tolist() == ids.tolist()
    back = unpack_distances(keys)
    assert np.array_equal(back, dists + np.float32(0.0))


def test_batched_topk_matches_bounded_heap_content(rng):
    from repro.structures.heap import TopKMaxHeap

    topk = BatchedTopK(batch=1, pool=8)
    heap = TopKMaxHeap(8)
    for _ in range(5):
        dists = rng.standard_normal(6).astype(np.float32)
        ids = rng.integers(0, 500, size=6)
        topk.merge(pack_keys(dists, ids)[None, :])
        for d, v in zip(dists.tolist(), ids.tolist()):
            heap.push_bounded(d, v)
    got = list(
        zip(
            unpack_distances(topk.keys[0, : int(topk.sizes()[0])]).tolist(),
            unpack_ids(topk.keys[0, : int(topk.sizes()[0])]).tolist(),
        )
    )
    assert got == sorted(heap.to_sorted_list())


def test_batched_frontier_bounded_eviction(rng):
    frontier = BatchedFrontier(batch=1, capacity=4)
    dists = np.array([0.5, 0.1, 0.9, 0.3, 0.7, 0.2], dtype=np.float32)
    ids = np.arange(6)
    frontier.seed(pack_keys(dists[:1], ids[:1]))
    new = pack_keys(dists[1:], ids[1:])[None, :]
    evicted = frontier.merge(
        np.zeros(1, dtype=np.int64), new, np.full(1, 5, dtype=np.int64)
    )
    kept = unpack_distances(frontier.keys[0]).tolist()
    assert kept == [pytest.approx(v) for v in [0.1, 0.2, 0.3, 0.5]]
    assert int(frontier.sizes[0]) == 4
    gone = evicted[evicted != PAD_KEY]
    assert sorted(unpack_distances(gone).tolist()) == [
        pytest.approx(0.7),
        pytest.approx(0.9),
    ]


# -- exact parity across metrics / graphs / configs ---------------------------


@pytest.mark.parametrize("metric", ["l2", "ip", "cosine"])
@pytest.mark.parametrize("graph_name", ["nsw", "nsg"])
def test_parity_across_metrics_and_graphs(
    parity_data, parity_graphs, graph_name, metric
):
    data, queries = parity_data
    searcher = SongSearcher(parity_graphs[graph_name], data)
    config = SearchConfig(k=10, queue_size=30, metric=metric)
    assert_exact_parity(searcher, queries, config)


@pytest.mark.parametrize(
    "bounded,selected,deletion",
    [
        (True, True, False),
        (True, True, True),
        (True, False, False),
        (True, False, True),
        (False, True, False),
        (False, False, False),
    ],
)
def test_parity_across_configs(parity_data, parity_graphs, bounded, selected, deletion):
    data, queries = parity_data
    searcher = SongSearcher(parity_graphs["nsw"], data)
    config = SearchConfig(
        k=10,
        queue_size=25,
        bounded_queue=bounded,
        selected_insertion=selected,
        visited_deletion=deletion,
    )
    assert_exact_parity(searcher, queries, config)


@pytest.mark.parametrize("probe_steps", [2, 4])
def test_parity_multi_step_probing(parity_data, parity_graphs, probe_steps):
    data, queries = parity_data
    searcher = SongSearcher(parity_graphs["nsw"], data)
    config = SearchConfig(k=10, queue_size=30, probe_steps=probe_steps)
    assert_exact_parity(searcher, queries, config)


@pytest.mark.parametrize("backend", ["hashtable", "pyset"])
def test_parity_exact_backends(parity_data, parity_graphs, backend):
    data, queries = parity_data
    searcher = SongSearcher(parity_graphs["nsw"], data)
    config = SearchConfig(k=10, queue_size=30, visited_backend=backend)
    assert_exact_parity(searcher, queries, config)


def test_parity_on_fixture_dataset(small_dataset, small_graph):
    searcher = SongSearcher(small_graph, small_dataset.data)
    config = SearchConfig(k=10, queue_size=40)
    assert_exact_parity(searcher, small_dataset.queries, config)


# -- SIMT lane-masking edge cases --------------------------------------------


def test_batch_of_one_matches_serial(parity_data, parity_graphs):
    data, queries = parity_data
    searcher = SongSearcher(parity_graphs["nsw"], data)
    config = SearchConfig(k=10, queue_size=30)
    serial = searcher.search(queries[0], config)
    batched = searcher.batched().search(queries[0], config)
    assert serial == batched


def test_early_terminating_lane_does_not_disturb_others(parity_data, parity_graphs):
    # Lane 0 sits on the entry point (converges almost immediately); lane 1
    # is a far-away query that keeps expanding.  The masked-out lane must
    # stop contributing work without corrupting the active one.
    data, _ = parity_data
    graph = parity_graphs["nsw"]
    searcher = SongSearcher(graph, data)
    config = SearchConfig(k=5, queue_size=12)
    easy = data[graph.entry_point]
    hard = np.full(data.shape[1], 10.0, dtype=np.float32)
    queries = np.stack([easy, hard])
    stats = [SearchStats(), SearchStats()]
    batched = searcher.search_batch(
        queries, config, engine="batched", stats=stats
    )
    assert batched[0] == searcher.search(easy, config)
    assert batched[1] == searcher.search(hard, config)
    # The lanes really did terminate at different rounds.
    assert stats[0].iterations != stats[1].iterations


def test_empty_batch():
    data = np.zeros((10, 4), dtype=np.float32)
    graph = build_nsw(data + np.arange(10, dtype=np.float32)[:, None], m=4, seed=0)
    searcher = SongSearcher(graph, np.ascontiguousarray(data + np.arange(10, dtype=np.float32)[:, None]))
    config = SearchConfig(k=2, queue_size=4)
    assert searcher.search_batch(np.zeros((0, 4), dtype=np.float32), config) == []


# -- dispatch, stats and meters ----------------------------------------------


def test_auto_dispatch_uses_batched_engine(parity_data, parity_graphs):
    data, queries = parity_data
    searcher = SongSearcher(parity_graphs["nsw"], data)
    config = SearchConfig(k=5, queue_size=20)
    assert searcher.supports_batched(config)
    auto = searcher.search_batch(queries, config)
    assert auto == searcher.search_batch(queries, config, engine="batched")


def test_probabilistic_backends_fall_back_to_serial(parity_data, parity_graphs):
    data, queries = parity_data
    searcher = SongSearcher(parity_graphs["nsw"], data)
    config = SearchConfig(k=5, queue_size=20, visited_backend="bloom")
    assert not searcher.supports_batched(config)
    # auto mode silently runs the serial loop ...
    results = searcher.search_batch(queries[:4], config)
    assert len(results) == 4
    # ... while forcing the batched engine is a hard error.
    with pytest.raises(ValueError, match="exact visited backend"):
        searcher.search_batch(queries[:4], config, engine="batched")


def test_stats_match_serial(parity_data, parity_graphs):
    data, queries = parity_data
    searcher = SongSearcher(parity_graphs["nsw"], data)
    config = SearchConfig(k=10, queue_size=30, probe_steps=2)
    serial_stats = [SearchStats() for _ in queries]
    batched_stats = [SearchStats() for _ in queries]
    searcher.search_batch(queries, config, engine="serial", stats=serial_stats)
    searcher.search_batch(queries, config, engine="batched", stats=batched_stats)
    for ser, bat in zip(serial_stats, batched_stats):
        assert ser.iterations == bat.iterations
        assert ser.distance_computations == bat.distance_computations
        assert ser.visited_inserts == bat.visited_inserts
        assert ser.visited_peak == bat.visited_peak


def test_meter_totals_match_serial(parity_data, parity_graphs):
    data, queries = parity_data
    dim = data.shape[1]
    flops = get_metric("l2").flops_per_distance(dim)
    searcher = SongSearcher(parity_graphs["nsw"], data)
    config = SearchConfig(k=10, queue_size=30, visited_deletion=True)
    serial_ops, batched_ops = OpCounter(), OpCounter()
    searcher.search_batch(
        queries, config, engine="serial", meter=CountingMeter(serial_ops, dim, flops)
    )
    searcher.search_batch(
        queries, config, engine="batched", meter=CountingMeter(batched_ops, dim, flops)
    )
    assert vars(serial_ops) == vars(batched_ops)


def test_stats_length_mismatch_rejected(parity_data, parity_graphs):
    data, queries = parity_data
    searcher = SongSearcher(parity_graphs["nsw"], data)
    config = SearchConfig(k=5, queue_size=20)
    with pytest.raises(ValueError, match="stats"):
        searcher.search_batch(queries, config, stats=[SearchStats()])


# -- float32 coercion ---------------------------------------------------------


def test_float64_dataset_warns_and_coerces(rng):
    data64 = rng.standard_normal((60, 8))
    assert data64.dtype == np.float64
    graph = build_nsw(data64.astype(np.float32), m=4, seed=1)
    with pytest.warns(UserWarning, match="float32"):
        searcher = SongSearcher(graph, data64)
    assert searcher.data.dtype == np.float32
    assert searcher.data.flags["C_CONTIGUOUS"]
    config = SearchConfig(k=3, queue_size=8)
    queries = rng.standard_normal((6, 8)).astype(np.float32)
    assert_exact_parity(searcher, queries, config)


def test_float32_dataset_not_copied(rng):
    data = np.ascontiguousarray(rng.standard_normal((50, 8)).astype(np.float32))
    graph = build_nsw(data, m=4, seed=1)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        searcher = SongSearcher(graph, data)
    assert searcher.data is data
    assert searcher.batched().data is data


def test_norms_cache_shared_between_engines(parity_data, parity_graphs):
    data, queries = parity_data
    searcher = SongSearcher(parity_graphs["nsw"], data)
    config = SearchConfig(k=5, queue_size=20, metric="cosine")
    searcher.search_batch(queries, config, engine="batched")
    assert searcher.batched().data_norms() is searcher.data_norms()
    expect = np.linalg.norm(data, axis=1)
    assert np.array_equal(searcher.data_norms(), expect)


# -- per-lane entry points (used by batched graph construction) ---------------


def test_entry_points_default_matches_explicit(parity_data, parity_graphs):
    data, queries = parity_data
    graph = parity_graphs["nsw"]
    searcher = BatchedSongSearcher(graph, data)
    config = SearchConfig(k=5, queue_size=20)
    default = searcher.search_batch(queries, config)
    entries = np.full(len(queries), graph.entry_point, dtype=np.int64)
    explicit = searcher.search_batch(queries, config, entry_points=entries)
    assert default == explicit


def test_entry_points_change_the_search(parity_data, parity_graphs):
    data, queries = parity_data
    graph = parity_graphs["nsw"]
    searcher = BatchedSongSearcher(graph, data)
    # A tiny exploration budget keeps lanes near their start vertex, so
    # different entry points must surface in the result lists.
    config = SearchConfig(k=5, queue_size=5)
    entries = np.arange(len(queries), dtype=np.int64) % graph.num_vertices
    moved = searcher.search_batch(queries, config, entry_points=entries)
    baseline = searcher.search_batch(queries, config)
    assert moved != baseline


def test_entry_points_bad_shape_rejected(parity_data, parity_graphs):
    data, queries = parity_data
    searcher = BatchedSongSearcher(parity_graphs["nsw"], data)
    config = SearchConfig(k=5, queue_size=20)
    with pytest.raises(ValueError, match="entry_points"):
        searcher.search_batch(
            queries, config, entry_points=np.zeros(3, dtype=np.int64)
        )


def test_entry_points_out_of_range_rejected(parity_data, parity_graphs):
    data, queries = parity_data
    graph = parity_graphs["nsw"]
    searcher = BatchedSongSearcher(graph, data)
    config = SearchConfig(k=5, queue_size=20)
    entries = np.full(len(queries), graph.num_vertices, dtype=np.int64)
    with pytest.raises(ValueError, match="out of range"):
        searcher.search_batch(queries, config, entry_points=entries)
