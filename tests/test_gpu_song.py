"""GPU SONG index tests: placement, timing behaviour, paper shapes."""

import pytest

from repro.core.config import SearchConfig
from repro.core.gpu_kernel import GpuSongIndex
from repro.eval.recall import batch_recall
from repro.simt.profiler import StageProfiler
from repro.structures.visited import VisitedBackend


@pytest.fixture(scope="module")
def index(small_dataset, small_graph):
    return GpuSongIndex(small_graph, small_dataset.data, device="v100")


class TestFunctional:
    def test_results_match_cpu_searcher(self, index, small_dataset):
        cfg = SearchConfig(k=10, queue_size=40)
        gpu_results, _ = index.search_batch(small_dataset.queries[:5], cfg)
        for q, res in zip(small_dataset.queries[:5], gpu_results):
            cpu = index.searcher.search(q, cfg)
            assert [v for _, v in res] == [v for _, v in cpu]

    def test_recall_reasonable(self, index, small_dataset):
        cfg = SearchConfig(k=10, queue_size=80)
        results, _ = index.search_batch(small_dataset.queries, cfg)
        gt = small_dataset.ground_truth(10)
        assert batch_recall(results, gt) > 0.8

    def test_single_query_input(self, index, small_dataset):
        cfg = SearchConfig(k=5, queue_size=20)
        results, _ = index.search_batch(small_dataset.queries[0], cfg)
        assert len(results) == 1


class TestPlacement:
    def test_bounded_structures_in_shared(self, index):
        cfg = SearchConfig(k=10, queue_size=40, selected_insertion=True,
                           visited_deletion=True)
        p = index.placement(cfg)
        assert p.frontier_in_shared
        assert p.visited_in_shared

    def test_unbounded_visited_in_global(self, index):
        cfg = SearchConfig(k=10, queue_size=40)  # plain hash table
        p = index.placement(cfg)
        assert not p.visited_in_shared

    def test_bloom_visited_in_shared(self, index):
        cfg = SearchConfig(
            k=10, queue_size=40, visited_backend=VisitedBackend.BLOOM
        )
        p = index.placement(cfg)
        assert p.visited_in_shared

    def test_huge_queue_spills(self, index):
        cfg = SearchConfig(k=10, queue_size=10_000)
        p = index.placement(cfg)
        assert not p.frontier_in_shared

    def test_memory_accounting(self, index, small_dataset):
        assert index.index_memory_bytes() == index.graph.memory_bytes()
        assert index.dataset_memory_bytes() == small_dataset.data.nbytes
        assert index.fits_in_device_memory()


class TestTimingShapes:
    def test_sel_del_faster_at_large_queue(self, index, small_dataset):
        """Fig. 7 shape: bounding the visited set (shared residency +
        occupancy) beats the plain hash table."""
        queries = small_dataset.queries
        base = SearchConfig(k=10, queue_size=100)
        seldel = base.with_options(selected_insertion=True, visited_deletion=True)
        _, t_base = index.search_batch(queries, base)
        _, t_seldel = index.search_batch(queries, seldel)
        assert t_seldel.qps(len(queries)) > t_base.qps(len(queries))

    def test_multi_query_not_faster(self, index, small_dataset):
        """Fig. 8 shape: multi-query per warp hurts throughput."""
        queries = small_dataset.queries
        cfg1 = SearchConfig(k=10, queue_size=60)
        cfg4 = cfg1.with_options(multi_query=4)
        _, t1 = index.search_batch(queries, cfg1)
        _, t4 = index.search_batch(queries, cfg4)
        assert t4.qps(len(queries)) <= t1.qps(len(queries))

    def test_multi_step_probe_not_faster(self, index, small_dataset):
        """Fig. 9 shape: probing several vertices per step wastes work."""
        queries = small_dataset.queries
        cfg1 = SearchConfig(k=10, queue_size=60)
        cfg4 = cfg1.with_options(probe_steps=4)
        _, t1 = index.search_batch(queries, cfg1)
        _, t4 = index.search_batch(queries, cfg4)
        assert t4.qps(len(queries)) <= t1.qps(len(queries)) * 1.02

    def test_v100_fastest_of_presets(self, small_dataset, small_graph):
        """Fig. 13 shape: throughput follows device compute power."""
        cfg = SearchConfig(k=10, queue_size=60)
        qps = {}
        for dev in ("v100", "p40", "titanx"):
            idx = GpuSongIndex(small_graph, small_dataset.data, device=dev)
            _, t = idx.search_batch(small_dataset.queries, cfg)
            qps[dev] = t.qps(small_dataset.num_queries)
        assert qps["v100"] >= qps["p40"]
        assert qps["v100"] >= qps["titanx"]

    def test_profiler_stage_split(self, index, small_dataset):
        prof = StageProfiler()
        cfg = SearchConfig(k=10, queue_size=60)
        index.search_batch(small_dataset.queries[:10], cfg, profiler=prof)
        kb = prof.kernel_breakdown()
        assert sum(kb.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in kb.values())
        # all three stages should actually occur
        assert min(kb.values()) > 0

    def test_collect_stats(self, index, small_dataset):
        cfg = SearchConfig(k=10, queue_size=40)
        _, res = index.search_batch(
            small_dataset.queries[:4], cfg, collect_stats=True
        )
        assert len(res.stats) == 4
        assert all(s.iterations > 0 for s in res.stats)
