"""Open-addressing hash set tests (including backward-shift deletion)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.hash_table import OpenAddressingSet

keys = st.integers(min_value=0, max_value=10**7)


class TestBasics:
    def test_insert_contains(self):
        s = OpenAddressingSet(16)
        assert s.insert(5)
        assert s.contains(5)
        assert 5 in s
        assert not s.contains(6)

    def test_double_insert_returns_false(self):
        s = OpenAddressingSet(16)
        assert s.insert(5)
        assert not s.insert(5)
        assert len(s) == 1

    def test_delete(self):
        s = OpenAddressingSet(16)
        s.insert(5)
        assert s.delete(5)
        assert not s.contains(5)
        assert not s.delete(5)
        assert len(s) == 0

    def test_negative_key_rejected(self):
        s = OpenAddressingSet(4)
        for op in (s.insert, s.contains, s.delete):
            with pytest.raises(ValueError):
                op(-1)

    def test_overflow_raises(self):
        s = OpenAddressingSet(4)
        for i in range(4):
            s.insert(i)
        with pytest.raises(OverflowError):
            s.insert(99)

    def test_clear(self):
        s = OpenAddressingSet(8)
        for i in range(5):
            s.insert(i)
        s.clear()
        assert len(s) == 0
        assert not s.contains(0)
        s.insert(3)  # usable after clear
        assert s.contains(3)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            OpenAddressingSet(0)

    def test_memory_is_power_of_two_words(self):
        s = OpenAddressingSet(100)
        assert s.memory_bytes() % 4 == 0
        n = s.memory_bytes() // 4
        assert n & (n - 1) == 0  # power of two slots

    def test_iteration_yields_stored_keys(self):
        s = OpenAddressingSet(8)
        for k in (3, 7, 11):
            s.insert(k)
        assert sorted(s) == [3, 7, 11]


class TestCollisionChains:
    def test_colliding_keys_all_found(self):
        # Many keys hashing near each other via small table.
        s = OpenAddressingSet(32)
        ks = [i * 64 for i in range(20)]  # likely collisions after masking
        for k in ks:
            s.insert(k)
        for k in ks:
            assert s.contains(k)

    def test_delete_middle_of_chain_keeps_rest_findable(self):
        s = OpenAddressingSet(32)
        ks = [i * 64 for i in range(16)]
        for k in ks:
            s.insert(k)
        for victim in ks[::2]:
            assert s.delete(victim)
        for k in ks[1::2]:
            assert s.contains(k), f"lost key {k} after chain deletion"
        for k in ks[::2]:
            assert not s.contains(k)


class TestAgainstPythonSet:
    @settings(max_examples=100, deadline=None)
    @given(ops=st.lists(st.tuples(st.sampled_from(["add", "del", "has"]), keys), max_size=300))
    def test_random_op_sequence(self, ops):
        s = OpenAddressingSet(512)
        oracle = set()
        for op, k in ops:
            if op == "add" and len(oracle) < 512:
                assert s.insert(k) == (k not in oracle)
                oracle.add(k)
            elif op == "del":
                assert s.delete(k) == (k in oracle)
                oracle.discard(k)
            elif op == "has":
                assert s.contains(k) == (k in oracle)
        assert len(s) == len(oracle)
        assert sorted(s) == sorted(oracle)
