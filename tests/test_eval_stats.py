"""Bootstrap statistics tests."""

import numpy as np
import pytest

from repro.eval.stats import bootstrap_ci, paired_bootstrap_pvalue, per_query_recall


class TestPerQueryRecall:
    def test_vector_values(self):
        results = [[(0.1, 1), (0.2, 2)], [(0.1, 9), (0.2, 8)]]
        gt = np.array([[1, 2], [1, 2]])
        np.testing.assert_array_equal(per_query_recall(results, gt), [1.0, 0.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            per_query_recall([[(0.0, 1)]], np.zeros((2, 1), dtype=int))


class TestBootstrapCI:
    def test_ci_contains_mean(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.7, 1.0, size=200)
        mean, low, high = bootstrap_ci(values)
        assert low <= mean <= high
        assert mean == pytest.approx(values.mean())

    def test_ci_narrows_with_more_data(self):
        rng = np.random.default_rng(1)
        small = rng.uniform(0, 1, size=20)
        big = rng.uniform(0, 1, size=2000)
        _, lo_s, hi_s = bootstrap_ci(small)
        _, lo_b, hi_b = bootstrap_ci(big)
        assert (hi_b - lo_b) < (hi_s - lo_s)

    def test_constant_data_zero_width(self):
        mean, low, high = bootstrap_ci([0.9] * 50)
        assert mean == low == high == 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_deterministic_given_seed(self):
        values = np.linspace(0, 1, 50)
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)


class TestPairedBootstrap:
    def test_clear_winner_small_pvalue(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(0.8, 1.0, size=100)
        b = a - 0.2
        assert paired_bootstrap_pvalue(a, b) < 0.01

    def test_identical_methods_large_pvalue(self):
        rng = np.random.default_rng(3)
        a = rng.uniform(0, 1, size=100)
        assert paired_bootstrap_pvalue(a, a.copy()) > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap_pvalue([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            paired_bootstrap_pvalue([], [])
